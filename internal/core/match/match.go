// Package match implements the paper's A/CNAME/NS matching (§IV-B.2): the
// primitives that attribute observed DNS records to DPS providers using AS
// IP ranges (A-matching) and the Table II unique substrings (CNAME- and
// NS-matching).
package match

import (
	"net/netip"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
	"rrdps/internal/ipspace"
)

// Matcher attributes records to providers.
type Matcher struct {
	registry *ipspace.Registry
	profiles []dps.Profile
	byASN    map[ipspace.ASN]dps.ProviderKey
}

// New creates a matcher over the registry (the RouteViews stand-in) and
// the Table II profiles.
func New(registry *ipspace.Registry, profiles []dps.Profile) *Matcher {
	if registry == nil {
		panic("match: registry is required")
	}
	m := &Matcher{
		registry: registry,
		profiles: append([]dps.Profile(nil), profiles...),
		byASN:    make(map[ipspace.ASN]dps.ProviderKey),
	}
	for _, p := range m.profiles {
		for _, asn := range p.ASNs {
			m.byASN[asn] = p.Key
		}
	}
	return m
}

// MatchA returns the provider whose announced IP ranges contain addr.
func (m *Matcher) MatchA(addr netip.Addr) (dps.ProviderKey, bool) {
	asn, ok := m.registry.ASNFor(addr)
	if !ok {
		return "", false
	}
	key, ok := m.byASN[asn]
	return key, ok
}

// MatchAnyA returns the first provider matching any of addrs.
func (m *Matcher) MatchAnyA(addrs []netip.Addr) (dps.ProviderKey, bool) {
	for _, a := range addrs {
		if key, ok := m.MatchA(a); ok {
			return key, true
		}
	}
	return "", false
}

// MatchCNAME returns the provider whose CNAME substrings occur in name.
func (m *Matcher) MatchCNAME(name dnsmsg.Name) (dps.ProviderKey, bool) {
	for _, p := range m.profiles {
		for _, sub := range p.CNAMESubstrings {
			if name.ContainsSubstring(sub) {
				return p.Key, true
			}
		}
	}
	return "", false
}

// MatchAnyCNAME returns the first provider matching any chain target.
func (m *Matcher) MatchAnyCNAME(names []dnsmsg.Name) (dps.ProviderKey, bool) {
	for _, n := range names {
		if key, ok := m.MatchCNAME(n); ok {
			return key, true
		}
	}
	return "", false
}

// MatchNS returns the provider whose NS substrings occur in host.
func (m *Matcher) MatchNS(host dnsmsg.Name) (dps.ProviderKey, bool) {
	for _, p := range m.profiles {
		for _, sub := range p.NSSubstrings {
			if host.ContainsSubstring(sub) {
				return p.Key, true
			}
		}
	}
	return "", false
}

// MatchAnyNS returns the first provider matching any NS host.
func (m *Matcher) MatchAnyNS(hosts []dnsmsg.Name) (dps.ProviderKey, bool) {
	for _, h := range hosts {
		if key, ok := m.MatchNS(h); ok {
			return key, true
		}
	}
	return "", false
}

// Profile returns the matcher's profile for key.
func (m *Matcher) Profile(key dps.ProviderKey) (dps.Profile, bool) {
	for _, p := range m.profiles {
		if p.Key == key {
			return p, true
		}
	}
	return dps.Profile{}, false
}

// InProviderRanges reports whether addr belongs to the specific provider's
// announced space — the IP-matching filter primitive of Fig. 8.
func (m *Matcher) InProviderRanges(key dps.ProviderKey, addr netip.Addr) bool {
	got, ok := m.MatchA(addr)
	return ok && got == key
}
