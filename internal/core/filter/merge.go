package filter

import "fmt"

// Merge combines two reports for the same provider over disjoint apex
// populations — the shard-parallel recombination (internal/shardrun).
// Scanned and DroppedByIPFilter are order-independent sums; Hidden and
// Outcomes merge by ascending apex, preserving each apex's intra-run
// record order, which reproduces exactly the sorted-apex assembly order
// Pipeline.Run uses over the whole population. Commutative and
// associative over disjoint populations, with the zero Report as the
// identity element. It panics when the two reports name different
// providers (merging across case studies is always a bug).
func (r Report) Merge(o Report) Report {
	provider := r.Provider
	if provider == "" {
		provider = o.Provider
	} else if o.Provider != "" && o.Provider != provider {
		panic(fmt.Sprintf("filter: merging reports for %q and %q", r.Provider, o.Provider))
	}
	out := Report{
		Provider:          provider,
		Scanned:           r.Scanned + o.Scanned,
		DroppedByIPFilter: r.DroppedByIPFilter + o.DroppedByIPFilter,
	}
	out.Hidden = mergeHidden(r.Hidden, o.Hidden)
	out.Outcomes = mergeOutcomes(r.Outcomes, o.Outcomes)
	return out
}

func mergeHidden(a, b []Hidden) []Hidden {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Hidden, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Stable on apex ties so a merge over overlapping populations is
		// still deterministic; shard populations are disjoint, so ties
		// never occur there.
		if a[i].Apex <= b[j].Apex {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func mergeOutcomes(a, b []Outcome) []Outcome {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Outcome, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Apex <= b[j].Apex {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
