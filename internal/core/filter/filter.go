// Package filter implements the Fig. 8 filtering procedure that turns raw
// scan answers into verified origin exposures:
//
//	scan answers ──IP-matching filter──▶ A_IP
//	A_IP ──A-matching filter (vs normal resolution A_nor)──▶ hidden records
//	hidden records ──HTML verification filter──▶ verified origins
package filter

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"rrdps/internal/core/htmlverify"
	"rrdps/internal/core/match"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/obs"
)

// Hidden is one hidden record: an address only retrievable from the DPS
// nameservers, invisible to normal resolution.
type Hidden struct {
	Apex dnsmsg.Name
	WWW  dnsmsg.Name
	Addr netip.Addr
}

// Outcome is a hidden record with its verification verdict.
type Outcome struct {
	Hidden
	// Verified is true when HTML verification confirmed the hidden
	// address serves the same site as the public view — an exposed
	// origin.
	Verified bool
}

// Report summarizes one filtering pass.
type Report struct {
	Provider dps.ProviderKey
	// Scanned is how many domains had scan answers at all.
	Scanned int
	// DroppedByIPFilter counts answers discarded because they point into
	// the provider's own ranges (protection currently ON there).
	DroppedByIPFilter int
	// Hidden are the hidden records (the A_diff set).
	Hidden []Hidden
	// Outcomes annotate each hidden record with its verification verdict.
	Outcomes []Outcome
}

// VerifiedOrigins returns the outcomes confirmed as origin exposures.
func (r Report) VerifiedOrigins() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if o.Verified {
			out = append(out, o)
		}
	}
	return out
}

// HiddenApexes returns the distinct apexes with hidden records.
func (r Report) HiddenApexes() []dnsmsg.Name {
	seen := make(map[dnsmsg.Name]bool)
	var out []dnsmsg.Name
	for _, h := range r.Hidden {
		if !seen[h.Apex] {
			seen[h.Apex] = true
			out = append(out, h.Apex)
		}
	}
	return out
}

// VerifiedApexes returns the distinct apexes with verified exposures.
func (r Report) VerifiedApexes() []dnsmsg.Name {
	seen := make(map[dnsmsg.Name]bool)
	var out []dnsmsg.Name
	for _, o := range r.Outcomes {
		if o.Verified && !seen[o.Apex] {
			seen[o.Apex] = true
			out = append(out, o.Apex)
		}
	}
	return out
}

// Pipeline runs the three filters.
type Pipeline struct {
	matcher  *match.Matcher
	resolver *dnsresolver.Resolver
	verifier *htmlverify.Verifier
	workers  int
	obs      *obs.Registry
}

// New creates a pipeline. resolver performs the "normal resolutions" of
// the A-matching filter; verifier performs HTML verification.
func New(matcher *match.Matcher, resolver *dnsresolver.Resolver, verifier *htmlverify.Verifier) *Pipeline {
	if matcher == nil || resolver == nil || verifier == nil {
		panic("filter: matcher, resolver, and verifier are required")
	}
	return &Pipeline{matcher: matcher, resolver: resolver, verifier: verifier, workers: 1}
}

// SetWorkers sets the per-apex filtering parallelism (default 1). Each
// apex's three stages run as one unit on one worker; the report is
// assembled from per-apex results in sorted apex order after fan-in, so
// Run's output is value-identical to a serial pass.
func (p *Pipeline) SetWorkers(n int) {
	if n < 1 {
		panic(fmt.Sprintf("filter: SetWorkers(%d)", n))
	}
	p.workers = n
}

// SetObserver installs a metrics registry on the pipeline and forwards it
// to the verifier, so one call wires the whole Fig. 8 chain. The filter.*
// counters are derived from the assembled report, hence deterministic;
// nil uninstalls.
func (p *Pipeline) SetObserver(r *obs.Registry) {
	p.obs = r
	p.verifier.SetObserver(r)
}

// apexResult is one apex's contribution to the report.
type apexResult struct {
	dropped  int
	hidden   []Hidden
	outcomes []Outcome
}

// Run filters one provider's scan answers (apex -> addresses retrieved
// from the provider's nameservers). With SetWorkers > 1 the apexes fan out
// over a bounded worker pool — the A-matching re-resolutions and HTML
// verifications dominate the cost — and the report keeps the deterministic
// sorted-apex ordering.
func (p *Pipeline) Run(provider dps.ProviderKey, scanned map[dnsmsg.Name][]netip.Addr) Report {
	span := p.obs.Tracer().StartSpan("filter", string(provider))
	span.SetItems(len(scanned))
	defer span.End()
	p.resolver.Checkpoint()
	rep := Report{Provider: provider, Scanned: len(scanned)}

	apexes := make([]dnsmsg.Name, 0, len(scanned))
	for apex := range scanned {
		apexes = append(apexes, apex)
	}
	sort.Slice(apexes, func(i, j int) bool { return apexes[i] < apexes[j] })

	results := make([]apexResult, len(apexes))
	one := func(i int) {
		results[i] = p.runApex(provider, apexes[i], scanned[apexes[i]])
	}
	if p.workers <= 1 || len(apexes) <= 1 {
		for i := range apexes {
			one(i)
		}
	} else {
		workers := p.workers
		if workers > len(apexes) {
			workers = len(apexes)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(apexes); i += workers {
					one(i)
				}
			}(w)
		}
		wg.Wait()
	}

	// Fan-in: stable sorted-apex order, exactly like the serial loop.
	for _, r := range results {
		rep.DroppedByIPFilter += r.dropped
		rep.Hidden = append(rep.Hidden, r.hidden...)
		rep.Outcomes = append(rep.Outcomes, r.outcomes...)
	}
	p.countReport(results, rep)
	return rep
}

// countReport accounts one pass from the assembled report — single
// goroutine, order-independent values, so filter.* stays deterministic.
func (p *Pipeline) countReport(results []apexResult, rep Report) {
	if p.obs == nil {
		return
	}
	p.obs.Counter("filter.runs").Inc()
	p.obs.Counter("filter.scanned").Add(uint64(rep.Scanned))
	p.obs.Counter("filter.dropped_ip").Add(uint64(rep.DroppedByIPFilter))
	p.obs.Counter("filter.hidden").Add(uint64(len(rep.Hidden)))
	p.obs.Counter("filter.verified").Add(uint64(len(rep.VerifiedOrigins())))
	hist := p.obs.Histogram("filter.hidden_per_apex")
	for _, r := range results {
		if len(r.hidden) > 0 {
			hist.Observe(uint64(len(r.hidden)))
		}
	}
}

// runApex runs the three Fig. 8 stages for one apex.
func (p *Pipeline) runApex(provider dps.ProviderKey, apex dnsmsg.Name, answers []netip.Addr) apexResult {
	var r apexResult
	www := apex.Child("www")

	// Stage 1 — IP-matching filter: answers inside the provider's own
	// ranges mean the site is under this provider's protection right
	// now; no residual resolution there.
	var aIP []netip.Addr
	for _, addr := range answers {
		if p.matcher.InProviderRanges(provider, addr) {
			r.dropped++
			continue
		}
		aIP = append(aIP, addr)
	}
	if len(aIP) == 0 {
		return r
	}

	// Stage 2 — A-matching filter: compare against the normal
	// resolution A_nor; what only the DPS nameservers return is
	// hidden: A_diff = A_IP − A_nor.
	aNor, err := p.resolver.Resolve(www, dnsmsg.TypeA)
	norSet := make(map[netip.Addr]bool)
	var publicAddr netip.Addr
	if err == nil {
		for _, a := range aNor.Addrs() {
			norSet[a] = true
			if !publicAddr.IsValid() {
				publicAddr = a
			}
		}
	}
	for _, addr := range aIP {
		if norSet[addr] {
			continue
		}
		r.hidden = append(r.hidden, Hidden{Apex: apex, WWW: www, Addr: addr})
	}
	if len(r.hidden) == 0 {
		return r
	}

	// Stage 3 — HTML verification filter: fetch via the public view
	// (IP2) and via each hidden address (IP1) and compare pages. With
	// no public address the record stays unverified (lower bound).
	r.outcomes = make([]Outcome, len(r.hidden))
	if publicAddr.IsValid() {
		cands := make([]netip.Addr, len(r.hidden))
		for i, h := range r.hidden {
			cands[i] = h.Addr
		}
		verdicts := p.verifier.VerifyBatch(www, publicAddr, cands, p.workers)
		for i, h := range r.hidden {
			r.outcomes[i] = Outcome{Hidden: h, Verified: verdicts[i].Match}
		}
	} else {
		for i, h := range r.hidden {
			r.outcomes[i] = Outcome{Hidden: h}
		}
	}
	return r
}
