package filter

import (
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"sort"
	"testing"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
)

// Merge-law property tests over randomized, seed-deterministic reports.
// Shard campaigns produce one Report per provider per week over
// disjoint apex populations; the driver folds them in completion order,
// so Merge must be commutative and associative over disjoint
// populations with the zero Report as identity, and a partition of a
// full report must merge back to exactly that report.

// randomReport builds a pipeline-shaped report: Hidden and Outcomes in
// ascending-apex order over a random apex subset.
func randomReport(rng *rand.Rand, provider dps.ProviderKey) Report {
	apexes := make([]dnsmsg.Name, 0, 20)
	seen := make(map[dnsmsg.Name]bool)
	for len(apexes) < 3+rng.Intn(17) {
		a := dnsmsg.Name(fmt.Sprintf("site-%04d.example.", rng.Intn(2000)))
		if seen[a] {
			continue
		}
		seen[a] = true
		apexes = append(apexes, a)
	}
	sort.Slice(apexes, func(i, j int) bool { return apexes[i] < apexes[j] })
	rep := Report{
		Provider:          provider,
		Scanned:           len(apexes) + rng.Intn(50),
		DroppedByIPFilter: rng.Intn(30),
	}
	for _, a := range apexes {
		h := Hidden{
			Apex: a,
			WWW:  a.Child("www"),
			Addr: netip.AddrFrom4([4]byte{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}),
		}
		rep.Hidden = append(rep.Hidden, h)
		rep.Outcomes = append(rep.Outcomes, Outcome{Hidden: h, Verified: rng.Intn(2) == 0})
	}
	return rep
}

// split partitions a report's per-apex rows into k shard reports,
// preserving order, and spreads the scalar tallies across them.
func split(rep Report, k int, rng *rand.Rand) []Report {
	parts := make([]Report, k)
	for i := range parts {
		parts[i].Provider = rep.Provider
	}
	for n, h := range rep.Hidden {
		i := rng.Intn(k)
		parts[i].Hidden = append(parts[i].Hidden, h)
		parts[i].Outcomes = append(parts[i].Outcomes, rep.Outcomes[n])
	}
	for n := 0; n < rep.Scanned; n++ {
		parts[rng.Intn(k)].Scanned++
	}
	for n := 0; n < rep.DroppedByIPFilter; n++ {
		parts[rng.Intn(k)].DroppedByIPFilter++
	}
	return parts
}

func TestReportMergeRecombinesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 100; trial++ {
		rep := randomReport(rng, dps.Cloudflare)
		parts := split(rep, 2+rng.Intn(6), rng)
		var merged Report
		for _, i := range rng.Perm(len(parts)) {
			merged = merged.Merge(parts[i])
		}
		if !reflect.DeepEqual(merged, rep) {
			t.Fatalf("trial %d: partition did not recombine\nmerged: %+v\nwant:   %+v",
				trial, merged, rep)
		}
	}
}

func TestReportMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	for trial := 0; trial < 100; trial++ {
		parts := split(randomReport(rng, dps.Incapsula), 3, rng)
		a, b, c := parts[0], parts[1], parts[2]
		if !reflect.DeepEqual(a.Merge(b), b.Merge(a)) {
			t.Fatalf("trial %d: Merge not commutative", trial)
		}
		if !reflect.DeepEqual(a.Merge(b).Merge(c), a.Merge(b.Merge(c))) {
			t.Fatalf("trial %d: Merge not associative", trial)
		}
		if got := a.Merge(Report{}); !reflect.DeepEqual(got, a) {
			t.Fatalf("trial %d: zero Report is not a right identity\ngot: %+v\na:   %+v", trial, got, a)
		}
		if got := (Report{}).Merge(a); !reflect.DeepEqual(got, a) {
			t.Fatalf("trial %d: zero Report is not a left identity\ngot: %+v\na:   %+v", trial, got, a)
		}
	}
}

func TestReportMergePanicsAcrossProviders(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging reports for different providers must panic")
		}
	}()
	a := Report{Provider: dps.Cloudflare}
	b := Report{Provider: dps.Incapsula}
	a.Merge(b)
}
