package filter

import (
	"net/netip"
	"testing"

	"rrdps/internal/alexa"
	"rrdps/internal/core/collect"
	"rrdps/internal/core/htmlverify"
	"rrdps/internal/core/match"
	"rrdps/internal/core/rrscan"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/website"
	"rrdps/internal/world"
)

type fixture struct {
	w        *world.World
	resolver *dnsresolver.Resolver
	matcher  *match.Matcher
	pipeline *Pipeline
	scanner  *rrscan.Scanner
	nsAddrs  []netip.Addr
	domains  []alexa.Domain
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	cfg := world.PaperConfig(n)
	cfg.Seed = 31
	cfg.OriginRestrictedRate = 0
	cfg.DynamicMetaRate = 0
	w := world.New(cfg)

	f := &fixture{
		w:        w,
		resolver: w.NewResolver(netsim.RegionOregon),
		matcher:  match.New(w.Registry, dps.Profiles()),
	}
	verifier := htmlverify.New(w.NewHTTPClient(netsim.RegionOregon))
	f.pipeline = New(f.matcher, f.resolver, verifier)

	for _, s := range w.Sites() {
		f.domains = append(f.domains, s.Domain())
	}
	var vantage []*dnsresolver.Client
	for _, region := range netsim.VantageRegions() {
		vantage = append(vantage, w.NewResolver(region).Client())
	}
	f.scanner = rrscan.NewScanner(vantage)

	collector := collect.New(f.resolver, f.domains)
	snap := collector.Collect(0)
	profile, _ := dps.ProfileFor(dps.Cloudflare)
	_, f.nsAddrs = rrscan.DiscoverNameservers([]collect.Snapshot{snap}, profile, f.resolver)
	if len(f.nsAddrs) == 0 {
		t.Fatal("no cloudflare nameservers discovered")
	}
	return f
}

func (f *fixture) cfNSSites(t *testing.T, min int) []*website.Site {
	t.Helper()
	var out []*website.Site
	for _, s := range f.w.Sites() {
		k, m, _ := s.Provider()
		if k == dps.Cloudflare && m == dps.ReroutingNS {
			out = append(out, s)
		}
	}
	if len(out) < min {
		t.Fatalf("need ≥%d cloudflare NS sites, have %d", min, len(out))
	}
	return out
}

func (f *fixture) scanAndFilter() Report {
	f.resolver.PurgeCache()
	scanned := f.scanner.ScanDirect(f.nsAddrs, f.domains)
	return f.pipeline.Run(dps.Cloudflare, scanned)
}

func TestAllActiveNothingHidden(t *testing.T) {
	f := newFixture(t, 250)
	rep := f.scanAndFilter()
	if len(rep.Hidden) != 0 {
		t.Fatalf("hidden = %v on a fully active population", rep.Hidden)
	}
	if rep.DroppedByIPFilter == 0 {
		t.Fatal("IP filter dropped nothing; active edges should be dropped")
	}
}

// TestSwitchedSiteIsVerifiedExposure is the paper's headline case: the old
// provider leaks an origin that is still live behind the new provider.
func TestSwitchedSiteIsVerifiedExposure(t *testing.T) {
	f := newFixture(t, 250)
	victim := f.cfNSSites(t, 1)[0]
	origin := victim.OriginAddr()
	if err := victim.Switch(dps.Incapsula, dps.ReroutingCNAME, dps.PlanFree, true); err != nil {
		t.Fatal(err)
	}

	rep := f.scanAndFilter()
	if len(rep.Hidden) != 1 || rep.Hidden[0].Apex != victim.Domain().Apex || rep.Hidden[0].Addr != origin {
		t.Fatalf("hidden = %+v, want victim origin", rep.Hidden)
	}
	verified := rep.VerifiedOrigins()
	if len(verified) != 1 || verified[0].Addr != origin {
		t.Fatalf("verified = %+v", verified)
	}
	if got := rep.VerifiedApexes(); len(got) != 1 || got[0] != victim.Domain().Apex {
		t.Fatalf("verified apexes = %v", got)
	}
}

// TestLeaverReturningToSelfHostingIsNotHidden: after a plain LEAVE, the
// residual answer equals the public answer, so the A-matching filter
// removes it — no hidden record.
func TestLeaverReturningToSelfHostingIsNotHidden(t *testing.T) {
	f := newFixture(t, 250)
	victim := f.cfNSSites(t, 2)[1]
	if err := victim.Leave(true); err != nil {
		t.Fatal(err)
	}
	rep := f.scanAndFilter()
	for _, h := range rep.Hidden {
		if h.Apex == victim.Domain().Apex {
			t.Fatalf("leaver with public origin flagged hidden: %+v", h)
		}
	}
}

// TestLeaverWithChangedIPIsHiddenButUnverified: the old provider leaks a
// stale origin address that no longer serves the site.
func TestLeaverWithChangedIPIsHiddenButUnverified(t *testing.T) {
	f := newFixture(t, 250)
	victim := f.cfNSSites(t, 3)[2]
	oldOrigin := victim.OriginAddr()
	if err := victim.Leave(true); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.ChangeOriginIP(); err != nil {
		t.Fatal(err)
	}
	rep := f.scanAndFilter()
	var found *Outcome
	for i := range rep.Outcomes {
		if rep.Outcomes[i].Apex == victim.Domain().Apex {
			found = &rep.Outcomes[i]
		}
	}
	if found == nil {
		t.Fatal("stale origin not reported hidden")
	}
	if found.Addr != oldOrigin {
		t.Fatalf("hidden addr = %v, want stale %v", found.Addr, oldOrigin)
	}
	if found.Verified {
		t.Fatal("dead stale address must not verify")
	}
}

// TestRestrictedOriginHiddenButUnverified models the lower-bound caveat: a
// switched site whose origin only answers the new provider's edges.
func TestRestrictedOriginHiddenButUnverified(t *testing.T) {
	f := newFixture(t, 250)
	victim := f.cfNSSites(t, 1)[0]
	if err := victim.Switch(dps.Incapsula, dps.ReroutingCNAME, dps.PlanFree, true); err != nil {
		t.Fatal(err)
	}
	if err := victim.RestrictToProviderEdges(); err != nil {
		t.Fatal(err)
	}
	rep := f.scanAndFilter()
	if len(rep.Hidden) != 1 {
		t.Fatalf("hidden = %+v", rep.Hidden)
	}
	if v := rep.VerifiedOrigins(); len(v) != 0 {
		t.Fatalf("restricted origin verified: %+v", v)
	}
}

func TestReportAccessors(t *testing.T) {
	rep := Report{
		Provider: dps.Cloudflare,
		Hidden: []Hidden{
			{Apex: "a.com", Addr: netip.MustParseAddr("10.0.0.1")},
			{Apex: "a.com", Addr: netip.MustParseAddr("10.0.0.2")},
			{Apex: "b.com", Addr: netip.MustParseAddr("10.0.0.3")},
		},
		Outcomes: []Outcome{
			{Hidden: Hidden{Apex: "a.com", Addr: netip.MustParseAddr("10.0.0.1")}, Verified: true},
			{Hidden: Hidden{Apex: "b.com", Addr: netip.MustParseAddr("10.0.0.3")}, Verified: false},
		},
	}
	if got := rep.HiddenApexes(); len(got) != 2 {
		t.Fatalf("HiddenApexes = %v", got)
	}
	if got := rep.VerifiedApexes(); len(got) != 1 || got[0] != dnsmsg.Name("a.com") {
		t.Fatalf("VerifiedApexes = %v", got)
	}
	if got := rep.VerifiedOrigins(); len(got) != 1 {
		t.Fatalf("VerifiedOrigins = %v", got)
	}
}
