package filter

import (
	"testing"

	"rrdps/internal/dps"
)

func sameReport(t *testing.T, serial, parallel Report) {
	t.Helper()
	if serial.Scanned != parallel.Scanned {
		t.Fatalf("Scanned: serial %d, parallel %d", serial.Scanned, parallel.Scanned)
	}
	if serial.DroppedByIPFilter != parallel.DroppedByIPFilter {
		t.Fatalf("DroppedByIPFilter: serial %d, parallel %d",
			serial.DroppedByIPFilter, parallel.DroppedByIPFilter)
	}
	if len(serial.Hidden) != len(parallel.Hidden) {
		t.Fatalf("Hidden: serial %d, parallel %d", len(serial.Hidden), len(parallel.Hidden))
	}
	for i := range serial.Hidden {
		if serial.Hidden[i] != parallel.Hidden[i] {
			t.Fatalf("Hidden[%d]: serial %+v, parallel %+v", i, serial.Hidden[i], parallel.Hidden[i])
		}
	}
	if len(serial.Outcomes) != len(parallel.Outcomes) {
		t.Fatalf("Outcomes: serial %d, parallel %d", len(serial.Outcomes), len(parallel.Outcomes))
	}
	for i := range serial.Outcomes {
		if serial.Outcomes[i] != parallel.Outcomes[i] {
			t.Fatalf("Outcomes[%d]: serial %+v, parallel %+v", i, serial.Outcomes[i], parallel.Outcomes[i])
		}
	}
}

// TestPipelineParallelMatchesSerial churns a population so the filter sees
// real hidden records, then asserts an 8-worker Run produces a report
// value-identical (including ordering) to the serial Run. Under -race this
// also proves the re-resolution and HTML-verification fan-out race-free.
func TestPipelineParallelMatchesSerial(t *testing.T) {
	f := newFixture(t, 400)
	sites := f.cfNSSites(t, 6)
	for i, s := range sites {
		var err error
		switch i % 3 {
		case 0:
			err = s.Switch(dps.Incapsula, dps.ReroutingCNAME, dps.PlanFree, true)
		case 1:
			err = s.Leave(true)
		default:
			// Stays active: exercises the IP filter.
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	f.resolver.PurgeCache()
	scanned := f.scanner.ScanDirect(f.nsAddrs, f.domains)
	f.resolver.PurgeCache()
	serial := f.pipeline.Run(dps.Cloudflare, scanned)
	if len(serial.Hidden) == 0 {
		t.Fatal("serial report has no hidden records; churn did not take")
	}

	f.pipeline.SetWorkers(8)
	f.resolver.PurgeCache()
	parallel := f.pipeline.Run(dps.Cloudflare, scanned)
	sameReport(t, serial, parallel)
}

func TestPipelineSetWorkersPanicsOnZero(t *testing.T) {
	f := newFixture(t, 200)
	defer func() {
		if recover() == nil {
			t.Fatal("SetWorkers(0) did not panic")
		}
	}()
	f.pipeline.SetWorkers(0)
}
