package rrscan

import (
	"net/netip"
	"testing"

	"rrdps/internal/core/collect"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
)

func sameScanResults(t *testing.T, serial, parallel map[dnsmsg.Name][]netip.Addr) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("result sizes differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for key, want := range serial {
		got, ok := parallel[key]
		if !ok {
			t.Fatalf("parallel result missing %s", key)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: serial %v, parallel %v", key, want, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: serial %v, parallel %v", key, want, got)
			}
		}
	}
}

// TestScanDirectParallelMatchesSerial runs the direct scan with eight
// workers and asserts the result map is value-identical to the serial scan
// (run under -race in CI, this also proves the path race-free).
func TestScanDirectParallelMatchesSerial(t *testing.T) {
	f := newFixture(t, 400)
	snap := f.collector.Collect(0)
	profile, _ := dps.ProfileFor(dps.Cloudflare)
	_, nsAddrs := DiscoverNameservers([]collect.Snapshot{snap}, profile, f.resolver)
	if len(nsAddrs) == 0 {
		t.Fatal("no nameservers discovered")
	}
	domains := f.collector.Domains()

	serial := f.scanner.ScanDirect(nsAddrs, domains)
	if len(serial) == 0 {
		t.Fatal("serial scan empty")
	}

	par := NewScanner(f.vantage)
	par.SetWorkers(8)
	parallel := par.ScanDirect(nsAddrs, domains)
	sameScanResults(t, serial, parallel)
}

// TestScanDirectHostsParallelMatchesSerial covers the generalized host scan.
func TestScanDirectHostsParallelMatchesSerial(t *testing.T) {
	f := newFixture(t, 300)
	snap := f.collector.Collect(0)
	profile, _ := dps.ProfileFor(dps.Cloudflare)
	_, nsAddrs := DiscoverNameservers([]collect.Snapshot{snap}, profile, f.resolver)
	if len(nsAddrs) == 0 {
		t.Fatal("no nameservers discovered")
	}
	var hosts []dnsmsg.Name
	for _, d := range f.collector.Domains() {
		hosts = append(hosts, d.WWW(), d.Apex)
	}

	serial := f.scanner.ScanDirectHosts(nsAddrs, hosts)
	par := NewScanner(f.vantage)
	par.SetWorkers(8)
	sameScanResults(t, serial, par.ScanDirectHosts(nsAddrs, hosts))
}

// TestScannerVantageRotationStableAcrossCalls checks that consecutive
// parallel scans keep advancing the rotation exactly like serial ones: two
// back-to-back scans from one scanner equal two from another regardless of
// worker count.
func TestScannerVantageRotationStableAcrossCalls(t *testing.T) {
	f := newFixture(t, 200)
	snap := f.collector.Collect(0)
	profile, _ := dps.ProfileFor(dps.Cloudflare)
	_, nsAddrs := DiscoverNameservers([]collect.Snapshot{snap}, profile, f.resolver)
	if len(nsAddrs) == 0 {
		t.Fatal("no nameservers discovered")
	}
	domains := f.collector.Domains()

	first := f.scanner.ScanDirect(nsAddrs, domains[:50])
	second := f.scanner.ScanDirect(nsAddrs, domains[50:100])

	par := NewScanner(f.vantage)
	par.SetWorkers(4)
	sameScanResults(t, first, par.ScanDirect(nsAddrs, domains[:50]))
	sameScanResults(t, second, par.ScanDirect(nsAddrs, domains[50:100]))
}

// TestCNAMELibraryResolveAllParallelMatchesSerial covers the Incapsula
// re-resolution path with a worker pool.
func TestCNAMELibraryResolveAllParallelMatchesSerial(t *testing.T) {
	f := newFixture(t, 1200)
	snap := f.collector.Collect(0)
	lib := NewCNAMELibrary(dps.Incapsula, f.matcher)
	lib.AddSnapshot(snap)
	if lib.Size() == 0 {
		t.Skip("no incapsula sites in sample")
	}

	f.resolver.PurgeCache()
	serial := lib.ResolveAll(f.resolver)
	if len(serial) == 0 {
		t.Fatal("serial ResolveAll empty")
	}

	lib.SetWorkers(8)
	f.resolver.PurgeCache()
	sameScanResults(t, serial, lib.ResolveAll(f.resolver))
}

func TestScannerSetWorkersPanicsOnZero(t *testing.T) {
	f := newFixture(t, 50)
	defer func() {
		if recover() == nil {
			t.Fatal("SetWorkers(0) did not panic")
		}
	}()
	f.scanner.SetWorkers(0)
}
