package rrscan

import (
	"net/netip"
	"testing"

	"rrdps/internal/alexa"
	"rrdps/internal/core/collect"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
)

// faultyFixture builds a fixture whose fabric injects deterministic
// faults, with the default retry policy installed on the scanner, and
// discovers the Cloudflare nameserver pool (serially, so both sides of a
// comparison see identical discovery).
func faultyFixture(t *testing.T) (*fixture, []netip.Addr, []alexa.Domain) {
	t.Helper()
	f := newFixture(t, 300)
	f.w.Net.SetFaults(netsim.FaultConfig{
		Seed:        77,
		LossRate:    0.15,
		FlakyRate:   0.2,
		CorruptRate: 0.05,
	})
	f.scanner.SetPolicy(dnsresolver.DefaultPolicy())

	snap := f.collector.Collect(0)
	profile, _ := dps.ProfileFor(dps.Cloudflare)
	_, nsAddrs := DiscoverNameservers([]collect.Snapshot{snap}, profile, f.resolver)
	if len(nsAddrs) == 0 {
		t.Fatal("no nameservers discovered under faults")
	}
	return f, nsAddrs, f.collector.Domains()
}

// TestScanDirectFaultsDeterministicSerialVsParallel is the retry-layer
// determinism property: on a faulty fabric, a parallel scan under the
// default retry policy produces the same answers AND the same QueryStats
// as a serial scan of an identically seeded world. Query IDs are
// scheduling-independent hashes, fault decisions are content hashes, and
// the sideline set only moves at checkpoints — so nothing observable
// depends on goroutine interleaving. Run under -race in CI.
func TestScanDirectFaultsDeterministicSerialVsParallel(t *testing.T) {
	serialF, serialNS, serialDomains := faultyFixture(t)
	parF, parNS, parDomains := faultyFixture(t)
	parF.scanner.SetWorkers(8)

	if len(serialNS) != len(parNS) || len(serialDomains) != len(parDomains) {
		t.Fatalf("fixture divergence: %d/%d nameservers, %d/%d domains",
			len(serialNS), len(parNS), len(serialDomains), len(parDomains))
	}

	// Two consecutive scan passes: the second exercises the health
	// checkpoint between passes and the vantage rotation carry-over.
	for pass := 0; pass < 2; pass++ {
		serial := serialF.scanner.ScanDirect(serialNS, serialDomains)
		parallel := parF.scanner.ScanDirect(parNS, parDomains)
		if len(serial) == 0 {
			t.Fatalf("pass %d: serial scan empty", pass)
		}
		sameScanResults(t, serial, parallel)

		serialStats, parStats := serialF.scanner.Stats(), parF.scanner.Stats()
		if serialStats != parStats {
			t.Fatalf("pass %d: stats diverge\nserial:   %v\nparallel: %v", pass, serialStats, parStats)
		}
		if pass == 1 && serialStats.Retries == 0 {
			t.Fatal("fault plan injected nothing — property test is vacuous")
		}
	}
}

// TestScanDirectFaultsRecoverVsNoRetry: on the same faulty fabric the
// retrying scanner answers for strictly more domains than the no-retry
// scanner, and every no-retry answer matches the retrying one (retries
// only fill holes, never change values).
func TestScanDirectFaultsRecoverVsNoRetry(t *testing.T) {
	retryF, retryNS, retryDomains := faultyFixture(t)
	plainF, plainNS, plainDomains := faultyFixture(t)
	plainF.scanner.SetPolicy(dnsresolver.NoRetryPolicy())

	withRetry := retryF.scanner.ScanDirect(retryNS, retryDomains)
	without := plainF.scanner.ScanDirect(plainNS, plainDomains)

	if len(withRetry) <= len(without) {
		t.Fatalf("retrying scan answered %d domains, no-retry %d — retries recovered nothing",
			len(withRetry), len(without))
	}
	for apex, addrs := range without {
		got, ok := withRetry[apex]
		if !ok {
			// A hedge can answer from an alternate nameserver; for active
			// customers every pool server serves the same zone, so answers
			// present without retries must persist with them.
			t.Fatalf("%s answered without retries but missing with them", apex)
		}
		if len(got) != len(addrs) {
			t.Fatalf("%s: no-retry %v vs retry %v", apex, addrs, got)
		}
	}

	stats := retryF.scanner.Stats()
	if stats.Recovered == 0 {
		t.Fatalf("retrying scanner stats show no recoveries: %v", stats)
	}
}
