// Package rrscan implements the paper's residual-resolution scanners (§V):
// direct interrogation of a provider's NS-hosting nameservers for every
// studied domain (the Cloudflare case study), and re-resolution of
// previously collected provider CNAMEs (the Incapsula case study), with
// queries spread across geographically distributed vantage points so the
// anycast fleet shares the load (Fig. 7).
package rrscan

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"rrdps/internal/alexa"
	"rrdps/internal/core/collect"
	"rrdps/internal/core/match"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/obs"
)

// NameserverDiscovery accumulates a provider's NS-hosting nameserver
// hostnames (for Cloudflare: the *.ns.cloudflare.com pool, which the
// paper finds is exclusive to NS-rerouting customers) from streamed
// records, then resolves them. It is the streaming form of
// DiscoverNameservers: feed it each record as a snapstore cursor yields
// one, no snapshot map required.
type NameserverDiscovery struct {
	profile dps.Profile
	seen    map[dnsmsg.Name]bool
}

// NewNameserverDiscovery creates a discovery pass for the profile.
func NewNameserverDiscovery(profile dps.Profile) *NameserverDiscovery {
	return &NameserverDiscovery{profile: profile, seen: make(map[dnsmsg.Name]bool)}
}

// AddRecord folds one record's NS hosts into the discovered set.
func (d *NameserverDiscovery) AddRecord(rec collect.Record) {
	for _, h := range rec.NSHosts {
		if d.seen[h] {
			continue
		}
		for _, sub := range d.profile.NSSubstrings {
			if h.ContainsSubstring(sub) {
				d.seen[h] = true
				break
			}
		}
	}
}

// Resolve returns the discovered hostnames, sorted, and each host's first
// A record (hosts that no longer resolve contribute no address).
func (d *NameserverDiscovery) Resolve(resolver *dnsresolver.Resolver) (hosts []dnsmsg.Name, addrs []netip.Addr) {
	hosts = make([]dnsmsg.Name, 0, len(d.seen))
	for h := range d.seen {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	for _, h := range hosts {
		res, err := resolver.Resolve(h, dnsmsg.TypeA)
		if err != nil {
			continue
		}
		if as := res.Addrs(); len(as) > 0 {
			addrs = append(addrs, as[0])
		}
	}
	return hosts, addrs
}

// DiscoverNameservers extracts, from collected snapshots, the hostnames of
// the provider's NS-hosting nameservers and resolves each to an address —
// the legacy map-based entry over NameserverDiscovery.
func DiscoverNameservers(snaps []collect.Snapshot, profile dps.Profile, resolver *dnsresolver.Resolver) (hosts []dnsmsg.Name, addrs []netip.Addr) {
	d := NewNameserverDiscovery(profile)
	for _, snap := range snaps {
		for _, rec := range snap.Records {
			d.AddRecord(rec)
		}
	}
	return d.Resolve(resolver)
}

// Scanner issues the direct scans from a set of vantage-point clients.
type Scanner struct {
	vantage []*dnsresolver.Client
	workers int
	next    int
	hedge   bool
	obs     *obs.Registry
}

// NewScanner creates a scanner over the given vantage clients (the paper
// uses five: Oregon, London, Sydney, Singapore, Tokyo). The scanner
// inherits each client's retry policy; use SetPolicy to install one
// uniformly and enable hedged scanning.
func NewScanner(vantage []*dnsresolver.Client) *Scanner {
	if len(vantage) == 0 {
		panic("rrscan: at least one vantage client is required")
	}
	return &Scanner{vantage: append([]*dnsresolver.Client(nil), vantage...), workers: 1}
}

// SetPolicy installs the retry policy on every vantage client and, when
// the policy hedges, makes each scan query offer the next nameserver in
// the rotation as a hedge candidate alongside its primary. Call between
// scans, not mid-scan.
//
// The scanner pins SelectFirst regardless of the policy's Selection: its
// own i-mod-n rotation already spreads load across the pool, and the
// candidate pair it hands each exchange is an ordered (assigned, hedge
// fallback) — letting a latency draw start at the fallback would defeat
// the rotation and break the invariant that a no-retry scan's attempts
// are a prefix of a retrying scan's.
func (s *Scanner) SetPolicy(p dnsresolver.Policy) {
	s.hedge = p.Hedge
	p.Selection = dnsresolver.SelectFirst
	for _, v := range s.vantage {
		v.SetPolicy(p)
	}
}

// SetObserver installs a metrics registry on the scanner and every
// vantage client (their dns.* counters fold into the same registry). Call
// between scans; nil uninstalls.
func (s *Scanner) SetObserver(r *obs.Registry) {
	s.obs = r
	for _, v := range s.vantage {
		v.SetObserver(r)
	}
}

// Stats sums the resilience accounting across the vantage clients. For a
// given seed and policy the totals are identical between serial and
// parallel scans: query IDs (and therefore the fabric's content-hashed
// fault decisions) depend only on the query identity, and the sideline
// set is frozen between checkpoints.
func (s *Scanner) Stats() dnsresolver.QueryStats {
	var sum dnsresolver.QueryStats
	for _, v := range s.vantage {
		sum = sum.Add(v.Stats())
	}
	return sum
}

// Sidelined returns the union of currently sidelined nameservers across
// the vantage clients, sorted.
func (s *Scanner) Sidelined() []netip.Addr {
	seen := make(map[netip.Addr]bool)
	for _, v := range s.vantage {
		for _, addr := range v.Health().Sidelined() {
			seen[addr] = true
		}
	}
	out := make([]netip.Addr, 0, len(seen))
	for addr := range seen {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// SetWorkers sets the scan parallelism (default 1), mirroring
// collect.Collector. The i-th query keeps the exact vantage client and
// nameserver the serial rotation would assign it, so — the fabric being
// quiescent and loss-free during a scan — parallel results are
// value-identical to serial ones regardless of completion order.
func (s *Scanner) SetWorkers(n int) {
	if n < 1 {
		panic(fmt.Sprintf("rrscan: SetWorkers(%d)", n))
	}
	s.workers = n
}

// ScanDirect queries, for every domain, a provider nameserver for the www
// subdomain's A records, rotating vantage points and nameserver addresses
// to spread load. Domains whose queries are ignored (timeout) or refused
// are absent from the result.
func (s *Scanner) ScanDirect(nsAddrs []netip.Addr, domains []alexa.Domain) map[dnsmsg.Name][]netip.Addr {
	if len(nsAddrs) == 0 {
		return nil
	}
	return s.scan(nsAddrs, len(domains), func(i int) (dnsmsg.Name, dnsmsg.Name) {
		return domains[i].Apex, domains[i].WWW()
	})
}

// ScanDirectHosts is ScanDirect generalized beyond the www subdomain: it
// queries the given hostnames verbatim, keyed by hostname in the result.
// The paper's limitations section (§V-C) notes its study covers only www
// while residual resolution is universal across any DPS-served subdomain;
// this is that generalization.
func (s *Scanner) ScanDirectHosts(nsAddrs []netip.Addr, hosts []dnsmsg.Name) map[dnsmsg.Name][]netip.Addr {
	if len(nsAddrs) == 0 {
		return nil
	}
	return s.scan(nsAddrs, len(hosts), func(i int) (dnsmsg.Name, dnsmsg.Name) {
		return hosts[i], hosts[i]
	})
}

// scan runs n queries, the i-th asking nameserver nsAddrs[i%len] for the
// qname of item(i) from vantage client (next+i)%len — the same rotation the
// serial loop performs — and keys successful answers by item(i)'s key.
// With workers > 1 the indices are distributed over a bounded pool; each
// worker writes only its own slots of a pre-sized results slice, and the
// map is assembled in index order afterwards, so the outcome is
// value-identical to the serial scan.
func (s *Scanner) scan(nsAddrs []netip.Addr, n int, item func(i int) (key, qname dnsmsg.Name)) map[dnsmsg.Name][]netip.Addr {
	span := s.obs.Tracer().StartSpan("scan", fmt.Sprintf("%d queries", n))
	span.SetItems(n)
	defer span.End()
	base := s.next
	s.next += n

	// Pass boundary: fold the previous scan's health observations into
	// sideline decisions while no queries are in flight.
	for _, v := range s.vantage {
		v.Checkpoint()
	}

	results := make([][]netip.Addr, n)
	one := func(i int) {
		client := s.vantage[(base+i)%len(s.vantage)]
		_, qname := item(i)
		// The i-th query's primary nameserver follows the serial rotation;
		// under a hedging policy the next server in the rotation rides
		// along as the alternate candidate, so a sidelined or lossy
		// primary doesn't silently erase the domain from the scan.
		servers := []netip.Addr{nsAddrs[i%len(nsAddrs)]}
		if s.hedge && len(nsAddrs) > 1 {
			servers = append(servers, nsAddrs[(i+1)%len(nsAddrs)])
		}
		resp, err := client.ExchangeAny(servers, qname, dnsmsg.TypeA)
		if err != nil || resp.Header.RCode != dnsmsg.RCodeNoError {
			return
		}
		var addrs []netip.Addr
		for _, rr := range resp.AnswersOfType(dnsmsg.TypeA) {
			addrs = append(addrs, rr.Data.(dnsmsg.AData).Addr)
		}
		results[i] = addrs
	}

	if s.workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			one(i)
		}
	} else {
		runIndexed(s.workers, n, one)
	}

	out := make(map[dnsmsg.Name][]netip.Addr)
	for i := 0; i < n; i++ {
		if len(results[i]) == 0 {
			continue
		}
		key, _ := item(i)
		out[key] = results[i]
	}
	// Counted from the assembled results on the caller's goroutine: scan
	// answers are value-identical serial vs parallel, so these are
	// deterministic counters.
	if s.obs != nil {
		s.obs.Counter("scan.queries").Add(uint64(n))
		s.obs.Counter("scan.answered").Add(uint64(len(out)))
	}
	return out
}

// runIndexed runs fn(0..n-1) over a bounded pool of workers goroutines,
// dealing indices round-robin so no channel hand-off is needed.
func runIndexed(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}

// CNAMELibrary accumulates the provider CNAME targets ever observed per
// domain. The Incapsula scan keeps re-resolving them after the customer
// has moved on, because the provider deletes or rewrites the CNAME at
// termination and only a previously collected copy lets an adversary ask
// (§III-B).
type CNAMELibrary struct {
	provider dps.ProviderKey
	matcher  *match.Matcher
	workers  int
	targets  map[dnsmsg.Name]map[dnsmsg.Name]bool // apex -> set of targets
	obs      *obs.Registry
}

// NewCNAMELibrary creates a library for the provider's CNAMEs.
func NewCNAMELibrary(provider dps.ProviderKey, matcher *match.Matcher) *CNAMELibrary {
	if matcher == nil {
		panic("rrscan: matcher is required")
	}
	return &CNAMELibrary{
		provider: provider,
		matcher:  matcher,
		workers:  1,
		targets:  make(map[dnsmsg.Name]map[dnsmsg.Name]bool),
	}
}

// SetWorkers sets the ResolveAll parallelism (default 1). Each apex's
// targets still resolve in sorted order within one worker, so the per-apex
// address lists keep their serial ordering and the result is
// value-identical to a serial run.
func (l *CNAMELibrary) SetWorkers(n int) {
	if n < 1 {
		panic(fmt.Sprintf("rrscan: SetWorkers(%d)", n))
	}
	l.workers = n
}

// SetObserver installs a metrics registry for the library's cname.*
// counters and re-resolution spans; nil uninstalls.
func (l *CNAMELibrary) SetObserver(r *obs.Registry) { l.obs = r }

// AddSnapshot records every CNAME target in the snapshot attributed to the
// library's provider — the legacy map-based entry over AddRecord.
func (l *CNAMELibrary) AddSnapshot(snap collect.Snapshot) {
	for apex, rec := range snap.Records {
		l.AddRecord(apex, rec)
	}
}

// AddRecord records one domain's provider-attributed CNAME targets — the
// streaming form of AddSnapshot, fed record by record from a snapstore
// cursor.
func (l *CNAMELibrary) AddRecord(apex dnsmsg.Name, rec collect.Record) {
	for _, target := range rec.CNAMEs {
		key, ok := l.matcher.MatchCNAME(target)
		if !ok || key != l.provider {
			continue
		}
		if l.targets[apex] == nil {
			l.targets[apex] = make(map[dnsmsg.Name]bool)
		}
		l.targets[apex][target] = true
	}
}

// Size returns the number of domains with recorded targets.
func (l *CNAMELibrary) Size() int { return len(l.targets) }

// Targets returns the recorded targets for apex.
func (l *CNAMELibrary) Targets(apex dnsmsg.Name) []dnsmsg.Name {
	set := l.targets[apex]
	out := make([]dnsmsg.Name, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Apexes returns every domain with recorded targets, sorted.
func (l *CNAMELibrary) Apexes() []dnsmsg.Name {
	out := make([]dnsmsg.Name, 0, len(l.targets))
	for apex := range l.targets {
		out = append(out, apex)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ResolveAll re-resolves every recorded CNAME target and returns the A
// records obtained per apex. Targets that no longer resolve drop out. With
// SetWorkers > 1 the apexes fan out over a bounded worker pool; the
// resolver is safe for concurrent use and its sharded cache keeps the
// workers from serializing.
func (l *CNAMELibrary) ResolveAll(resolver *dnsresolver.Resolver) map[dnsmsg.Name][]netip.Addr {
	resolver.Checkpoint()
	apexes := l.Apexes()
	span := l.obs.Tracer().StartSpan("cname", fmt.Sprintf("%d apexes", len(apexes)))
	span.SetItems(len(apexes))
	defer span.End()
	results := make([][]netip.Addr, len(apexes))
	one := func(i int) {
		for _, target := range l.Targets(apexes[i]) {
			res, err := resolver.Resolve(target, dnsmsg.TypeA)
			if err != nil {
				continue
			}
			if addrs := res.Addrs(); len(addrs) > 0 {
				results[i] = append(results[i], addrs...)
			}
		}
	}
	if l.workers <= 1 || len(apexes) <= 1 {
		for i := range apexes {
			one(i)
		}
	} else {
		runIndexed(l.workers, len(apexes), one)
	}
	out := make(map[dnsmsg.Name][]netip.Addr)
	for i, apex := range apexes {
		if len(results[i]) > 0 {
			out[apex] = results[i]
		}
	}
	if l.obs != nil {
		l.obs.Counter("cname.apexes").Add(uint64(len(apexes)))
		l.obs.Counter("cname.resolved").Add(uint64(len(out)))
	}
	return out
}
