package rrscan

import (
	"fmt"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
)

// ScannerState is the scanner state that must survive a campaign
// restart: the vantage rotation cursor (the i-th query of the next scan
// must use the same client the uninterrupted run would have) and each
// vantage client's nameserver-health record, in vantage order.
type ScannerState struct {
	Next    int
	Vantage []dnsresolver.HealthState
}

// ExportState captures the scanner's resumable state. Call between
// scans, like every other configuration entry point.
func (s *Scanner) ExportState() ScannerState {
	st := ScannerState{Next: s.next}
	for _, v := range s.vantage {
		st.Vantage = append(st.Vantage, v.Health().ExportState())
	}
	return st
}

// RestoreState overwrites the scanner's resumable state. The vantage
// count must match the exporting scanner's — the vantage list is
// configuration, rebuilt by the caller, not checkpointed.
func (s *Scanner) RestoreState(st ScannerState) error {
	if len(st.Vantage) != len(s.vantage) {
		return fmt.Errorf("rrscan: %d vantage health records for %d clients", len(st.Vantage), len(s.vantage))
	}
	if st.Next < 0 {
		return fmt.Errorf("rrscan: negative rotation cursor %d", st.Next)
	}
	s.next = st.Next
	for i, v := range s.vantage {
		v.Health().RestoreState(st.Vantage[i])
	}
	return nil
}

// CNAMETargets is one domain's recorded provider CNAME targets.
type CNAMETargets struct {
	Apex    dnsmsg.Name
	Targets []dnsmsg.Name
}

// ExportState captures the library's accumulated targets, sorted by
// apex and target so the encoding is deterministic.
func (l *CNAMELibrary) ExportState() []CNAMETargets {
	out := make([]CNAMETargets, 0, len(l.targets))
	for _, apex := range l.Apexes() {
		out = append(out, CNAMETargets{Apex: apex, Targets: l.Targets(apex)})
	}
	return out
}

// RestoreState replaces the library's accumulated targets. Provider and
// matcher are configuration and stay as constructed.
func (l *CNAMELibrary) RestoreState(ts []CNAMETargets) {
	l.targets = make(map[dnsmsg.Name]map[dnsmsg.Name]bool, len(ts))
	for _, t := range ts {
		if len(t.Targets) == 0 {
			continue
		}
		set := make(map[dnsmsg.Name]bool, len(t.Targets))
		for _, target := range t.Targets {
			set[target] = true
		}
		l.targets[t.Apex] = set
	}
}
