package rrscan

import (
	"testing"

	"rrdps/internal/alexa"
	"rrdps/internal/core/collect"
	"rrdps/internal/core/match"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/website"
	"rrdps/internal/world"
)

type fixture struct {
	w         *world.World
	resolver  *dnsresolver.Resolver
	collector *collect.Collector
	matcher   *match.Matcher
	scanner   *Scanner
	vantage   []*dnsresolver.Client
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	cfg := world.PaperConfig(n)
	cfg.Seed = 23
	// Scripted scenario: disable the hardening knobs that make
	// verification probabilistic.
	cfg.OriginRestrictedRate = 0
	cfg.DynamicMetaRate = 0
	w := world.New(cfg)

	resolver := w.NewResolver(netsim.RegionOregon)
	sites := w.Sites()
	domains := make([]alexa.Domain, len(sites))
	for i, s := range sites {
		domains[i] = s.Domain()
	}
	var vantage []*dnsresolver.Client
	for _, region := range netsim.VantageRegions() {
		vantage = append(vantage, w.NewResolver(region).Client())
	}
	return &fixture{
		w:         w,
		resolver:  resolver,
		collector: collect.New(resolver, domains),
		matcher:   match.New(w.Registry, dps.Profiles()),
		scanner:   NewScanner(vantage),
		vantage:   vantage,
	}
}

func (f *fixture) sitesWith(key dps.ProviderKey, method dps.Rerouting) []*website.Site {
	var out []*website.Site
	for _, s := range f.w.Sites() {
		k, m, _ := s.Provider()
		if k == key && m == method {
			out = append(out, s)
		}
	}
	return out
}

func TestDiscoverNameservers(t *testing.T) {
	f := newFixture(t, 300)
	snap := f.collector.Collect(0)
	profile, _ := dps.ProfileFor(dps.Cloudflare)
	hosts, addrs := DiscoverNameservers([]collect.Snapshot{snap}, profile, f.resolver)
	if len(hosts) == 0 || len(addrs) != len(hosts) {
		t.Fatalf("hosts = %d, addrs = %d", len(hosts), len(addrs))
	}
	for _, h := range hosts {
		if !h.ContainsSubstring("cloudflare") {
			t.Fatalf("non-cloudflare host discovered: %s", h)
		}
	}
	for _, a := range addrs {
		if key, ok := f.matcher.MatchA(a); !ok || key != dps.Cloudflare {
			t.Fatalf("discovered NS addr %v not in Cloudflare ranges", a)
		}
	}
}

func TestScanDirectActiveCustomersReturnEdges(t *testing.T) {
	f := newFixture(t, 300)
	snap := f.collector.Collect(0)
	profile, _ := dps.ProfileFor(dps.Cloudflare)
	_, nsAddrs := DiscoverNameservers([]collect.Snapshot{snap}, profile, f.resolver)

	results := f.scanner.ScanDirect(nsAddrs, f.collector.Domains())
	cfSites := f.sitesWith(dps.Cloudflare, dps.ReroutingNS)
	if len(cfSites) == 0 {
		t.Fatal("no cloudflare NS sites")
	}
	for _, s := range cfSites {
		addrs, ok := results[s.Domain().Apex]
		if !ok {
			t.Fatalf("active customer %s missing from scan", s.Domain().Apex)
		}
		if got, ok := f.matcher.MatchA(addrs[0]); !ok || got != dps.Cloudflare {
			t.Fatalf("active customer %s scanned addr %v not a CF edge", s.Domain().Apex, addrs[0])
		}
	}
	// Non-customers never answer.
	for _, s := range f.w.Sites() {
		if key, _, _ := s.Provider(); key == "" {
			if _, ok := results[s.Domain().Apex]; ok {
				t.Fatalf("non-customer %s present in scan", s.Domain().Apex)
			}
		}
	}
}

// TestScanDirectResidualAfterSwitch is the §V-A attack end to end: after a
// customer switches away, the old provider's nameservers leak the origin.
func TestScanDirectResidualAfterSwitch(t *testing.T) {
	f := newFixture(t, 300)
	snap := f.collector.Collect(0)
	profile, _ := dps.ProfileFor(dps.Cloudflare)
	_, nsAddrs := DiscoverNameservers([]collect.Snapshot{snap}, profile, f.resolver)

	cfSites := f.sitesWith(dps.Cloudflare, dps.ReroutingNS)
	if len(cfSites) < 3 {
		t.Fatalf("need ≥3 cloudflare sites, have %d", len(cfSites))
	}
	switched, left, silent := cfSites[0], cfSites[1], cfSites[2]
	switchedOrigin := switched.OriginAddr()
	if err := switched.Switch(dps.Incapsula, dps.ReroutingCNAME, dps.PlanFree, true); err != nil {
		t.Fatal(err)
	}
	if err := left.Leave(true); err != nil {
		t.Fatal(err)
	}
	if err := silent.Leave(false); err != nil {
		t.Fatal(err)
	}

	results := f.scanner.ScanDirect(nsAddrs, f.collector.Domains())

	if got := results[switched.Domain().Apex]; len(got) != 1 || got[0] != switchedOrigin {
		t.Fatalf("switched site scan = %v, want origin %v", got, switchedOrigin)
	}
	if got := results[left.Domain().Apex]; len(got) != 1 || got[0] != left.OriginAddr() {
		t.Fatalf("left site scan = %v, want origin %v", got, left.OriginAddr())
	}
	// The silent leaver's records still point at the edge: no origin leak.
	if got := results[silent.Domain().Apex]; len(got) != 1 {
		t.Fatalf("silent site scan = %v", got)
	} else if key, ok := f.matcher.MatchA(got[0]); !ok || key != dps.Cloudflare {
		t.Fatalf("silent site scan = %v, want CF edge", got)
	}
}

func TestScanSpreadsAcrossVantagePoints(t *testing.T) {
	f := newFixture(t, 200)
	snap := f.collector.Collect(0)
	profile, _ := dps.ProfileFor(dps.Cloudflare)
	_, nsAddrs := DiscoverNameservers([]collect.Snapshot{snap}, profile, f.resolver)
	if len(nsAddrs) == 0 {
		t.Fatal("no nameservers discovered")
	}
	f.scanner.ScanDirect(nsAddrs, f.collector.Domains())

	// At least three distinct PoPs of the first NS endpoint saw traffic
	// (Fig. 7's load spreading).
	counts := f.w.Net.QueryCounts(netsim.Endpoint{Addr: nsAddrs[0], Port: netsim.PortDNS})
	if len(counts) < 3 {
		t.Fatalf("scan load hit only %d PoPs: %v", len(counts), counts)
	}
}

func TestCNAMELibrary(t *testing.T) {
	f := newFixture(t, 1200)
	snap := f.collector.Collect(0)

	lib := NewCNAMELibrary(dps.Incapsula, f.matcher)
	lib.AddSnapshot(snap)
	incSites := f.sitesWith(dps.Incapsula, dps.ReroutingCNAME)
	if len(incSites) == 0 {
		t.Skip("no incapsula sites in sample")
	}
	if lib.Size() != len(incSites) {
		t.Fatalf("library size = %d, want %d", lib.Size(), len(incSites))
	}

	victim := incSites[0]
	origin := victim.OriginAddr()
	if err := victim.Switch(dps.Cloudflare, dps.ReroutingNS, dps.PlanFree, true); err != nil {
		t.Fatal(err)
	}

	f.resolver.PurgeCache()
	results := lib.ResolveAll(f.resolver)
	got, ok := results[victim.Domain().Apex]
	if !ok || len(got) != 1 || got[0] != origin {
		t.Fatalf("stale CNAME resolution = %v, %v, want origin %v", got, ok, origin)
	}
	// Targets accessor is sorted and non-empty for the victim.
	if ts := lib.Targets(victim.Domain().Apex); len(ts) != 1 || !ts[0].ContainsSubstring("incapdns") {
		t.Fatalf("targets = %v", ts)
	}
	if len(lib.Apexes()) != lib.Size() {
		t.Fatal("Apexes inconsistent with Size")
	}
}

func TestCNAMELibraryIgnoresOtherProviders(t *testing.T) {
	f := newFixture(t, 400)
	snap := f.collector.Collect(0)
	lib := NewCNAMELibrary(dps.Incapsula, f.matcher)
	lib.AddSnapshot(snap)
	for _, apex := range lib.Apexes() {
		site, _ := f.w.Site(apex)
		key, _, _ := site.Provider()
		if key != dps.Incapsula {
			t.Fatalf("library holds %s (provider %s)", apex, key)
		}
	}
}

// TestScanDirectHostsSubdomains generalizes the scan beyond www (§V-C):
// a DPS-hosted subdomain's residual record leaks just like www's.
func TestScanDirectHostsSubdomains(t *testing.T) {
	f := newFixture(t, 300)
	snap := f.collector.Collect(0)
	profile, _ := dps.ProfileFor(dps.Cloudflare)
	_, nsAddrs := DiscoverNameservers([]collect.Snapshot{snap}, profile, f.resolver)

	victim := f.sitesWith(dps.Cloudflare, dps.ReroutingNS)[0]
	apex := victim.Domain().Apex
	origin := victim.OriginAddr()
	if err := victim.Switch(dps.Incapsula, dps.ReroutingCNAME, dps.PlanFree, true); err != nil {
		t.Fatal(err)
	}

	hosts := []dnsmsg.Name{apex.Child("www"), apex, apex.Child("missing")}
	results := f.scanner.ScanDirectHosts(nsAddrs, hosts)
	if got := results[apex.Child("www")]; len(got) != 1 || got[0] != origin {
		t.Fatalf("www scan = %v, want origin %v", got, origin)
	}
	// The apex record is also hosted (and leaked).
	if got := results[apex]; len(got) != 1 || got[0] != origin {
		t.Fatalf("apex scan = %v, want origin %v", got, origin)
	}
	// Nonexistent subdomains yield nothing (NXDOMAIN).
	if _, ok := results[apex.Child("missing")]; ok {
		t.Fatal("nonexistent subdomain answered")
	}
}
