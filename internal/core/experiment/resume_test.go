package experiment

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The resume-equivalence suite pins the durability tentpole's keystone
// guarantee: a campaign killed at ANY round boundary — or mid-day, with
// the WAL cut at an arbitrary byte — and resumed against a fresh world
// built from the same config produces a result value-identical to an
// uninterrupted run. The baseline runs WITHOUT a checkpoint directory,
// so the suite simultaneously pins that checkpointing itself never
// perturbs a campaign's outputs.

// dynCfg parametrizes one Dynamics resume scenario.
type dynCfg struct {
	sites    int
	seed     int64
	days     int
	workers  int
	every    int
	longProb float64
	randSeed int64
}

func (c dynCfg) build(dir string, resume bool, stopAfter int) Dynamics {
	d := Dynamics{
		World:           dynamicsWorld(c.sites, c.seed),
		Days:            c.days,
		Workers:         c.workers,
		CheckpointDir:   dir,
		CheckpointEvery: c.every,
		Resume:          resume,
		StopAfterDays:   stopAfter,
	}
	if c.longProb > 0 {
		d.LongIntervalProb = c.longProb
		d.Rand = rand.New(rand.NewSource(c.randSeed))
	}
	return d
}

// killAndResume runs the campaign to a simulated kill after stopAfter
// days, then resumes it to completion in a second process-equivalent run.
func (c dynCfg) killAndResume(t *testing.T, dir string, stopAfter int) DynamicsResult {
	t.Helper()
	c.build(dir, false, stopAfter).Run()
	return c.build(dir, true, 0).Run()
}

func TestDynamicsResumeEveryDayBoundary(t *testing.T) {
	cfg := dynCfg{sites: 300, seed: 8101, days: 8, every: 3}
	baseline := cfg.build("", false, 0).Run()
	for kill := 1; kill < cfg.days; kill++ {
		t.Run(fmt.Sprintf("kill-after-day-%d", kill), func(t *testing.T) {
			resumed := cfg.killAndResume(t, t.TempDir(), kill)
			diffResults(t, resumed, baseline)
		})
	}
}

func TestDynamicsResumeParallel(t *testing.T) {
	cfg := dynCfg{sites: 300, seed: 8103, days: 8, every: 3, workers: 4}
	baseline := cfg.build("", false, 0).Run()
	for _, kill := range []int{2, 5} {
		t.Run(fmt.Sprintf("kill-after-day-%d", kill), func(t *testing.T) {
			// Workers > 1: resolver stats depend on goroutine interleaving
			// over the shared cache, the same latitude every other
			// serial≡parallel comparison in this package allows.
			diffResults(t, cfg.killAndResume(t, t.TempDir(), kill), baseline, "Stats")
		})
	}
}

func TestDynamicsResumeLongIntervals(t *testing.T) {
	// The jitter Rand is consumed mid-campaign; resume must burn the
	// recorded number of draws from a fresh identically-seeded Rand.
	cfg := dynCfg{sites: 250, seed: 8107, days: 9, every: 2, longProb: 0.4, randSeed: 17}
	baseline := cfg.build("", false, 0).Run()
	for _, kill := range []int{1, 4, 7} {
		t.Run(fmt.Sprintf("kill-after-day-%d", kill), func(t *testing.T) {
			diffResults(t, cfg.killAndResume(t, t.TempDir(), kill), baseline)
		})
	}
}

// TestDynamicsResumeMidDayWALCut simulates the harder crash: the process
// died mid-write, leaving the WAL cut at an arbitrary byte. The torn
// tail — up to and including the last sealed group the cut destroys —
// is dropped and those days are re-collected live; the resumed result
// must still be value-identical.
func TestDynamicsResumeMidDayWALCut(t *testing.T) {
	cfg := dynCfg{sites: 300, seed: 8101, days: 8, every: 1000} // one checkpoint at day 0, everything after in the WAL
	baseline := cfg.build("", false, 0).Run()
	for _, cut := range []int{4, 600, 20000} {
		t.Run(fmt.Sprintf("cut-%d-bytes", cut), func(t *testing.T) {
			dir := t.TempDir()
			cfg.build(dir, false, 5).Run()
			walPath := filepath.Join(dir, "wal.log")
			fi, err := os.Stat(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if int64(cut) >= fi.Size() {
				t.Fatalf("cut %d >= wal size %d; shrink the cut", cut, fi.Size())
			}
			if err := os.Truncate(walPath, fi.Size()-int64(cut)); err != nil {
				t.Fatal(err)
			}
			diffResults(t, cfg.build(dir, true, 0).Run(), baseline)
		})
	}
}

// TestDynamicsResumeCorruptNewestCheckpoint damages the newest
// checkpoint file: resume must fall back to the older rotation and
// re-run the lost days live, still matching the baseline.
func TestDynamicsResumeCorruptNewestCheckpoint(t *testing.T) {
	cfg := dynCfg{sites: 300, seed: 8101, days: 8, every: 2}
	baseline := cfg.build("", false, 0).Run()
	dir := t.TempDir()
	cfg.build(dir, false, 6).Run()
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*.snap"))
	if err != nil || len(matches) < 2 {
		t.Fatalf("checkpoint rotation files: %v (%v)", matches, err)
	}
	// Glob sorts lexically and the labels are zero-padded, so the last
	// match is the newest checkpoint.
	if err := os.WriteFile(matches[len(matches)-1], []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	diffResults(t, cfg.build(dir, true, 0).Run(), baseline)
}

// TestDynamicsResumeTwice kills the campaign twice — once in the
// original run and once in the first resumed run — before letting a
// second resume finish it. This pins that the cursor's BaseStats stays
// cumulative across restarts: the first resume must fold the accounting
// it inherited into every footer/checkpoint it writes, or the second
// resume silently drops all pre-first-crash query accounting.
func TestDynamicsResumeTwice(t *testing.T) {
	cfg := dynCfg{sites: 300, seed: 8101, days: 8, every: 3}
	baseline := cfg.build("", false, 0).Run()
	for _, kills := range [][2]int{{2, 3}, {3, 2}, {1, 1}} {
		t.Run(fmt.Sprintf("kill-after-%d-then-%d", kills[0], kills[1]), func(t *testing.T) {
			dir := t.TempDir()
			cfg.build(dir, false, kills[0]).Run()
			cfg.build(dir, true, kills[1]).Run()
			diffResults(t, cfg.build(dir, true, 0).Run(), baseline)
		})
	}
}

func TestDynamicsResumeCompletedCampaignIsNoop(t *testing.T) {
	cfg := dynCfg{sites: 250, seed: 8109, days: 6, every: 2}
	dir := t.TempDir()
	first := cfg.build(dir, false, 0).Run()
	again := cfg.build(dir, true, 0).Run()
	diffResults(t, again, first)
}

func TestDynamicsResumeEmptyDirStartsFresh(t *testing.T) {
	cfg := dynCfg{sites: 250, seed: 8111, days: 5, every: 2}
	baseline := cfg.build("", false, 0).Run()
	diffResults(t, cfg.build(t.TempDir(), true, 0).Run(), baseline)
}

// resCfg parametrizes one Residual resume scenario.
type resCfg struct {
	sites    int
	seed     int64
	weeks    int
	warmup   int
	incStart int
	workers  int
	every    int
}

func (c resCfg) build(dir string, resume bool, stopAfter int) Residual {
	return Residual{
		World:              residualWorld(c.sites, c.seed),
		Weeks:              c.weeks,
		WarmupDays:         c.warmup,
		IncapsulaStartWeek: c.incStart,
		Workers:            c.workers,
		CheckpointDir:      dir,
		CheckpointEvery:    c.every,
		Resume:             resume,
		StopAfterRounds:    stopAfter,
	}
}

func (c resCfg) rounds() int { return (c.warmup+6)/7 + c.weeks }

func (c resCfg) killAndResume(t *testing.T, dir string, stopAfter int) ResidualResult {
	t.Helper()
	c.build(dir, false, stopAfter).Run()
	return c.build(dir, true, 0).Run()
}

func TestResidualResumeEveryRoundBoundary(t *testing.T) {
	// warmup 14 = two warm-up rounds, then three weekly rounds; the kill
	// sweep covers both warm-up and scan-week boundaries.
	cfg := resCfg{sites: 400, seed: 9001, weeks: 3, warmup: 14, incStart: 2, every: 7}
	baseline := cfg.build("", false, 0).Run()
	for kill := 1; kill < cfg.rounds(); kill++ {
		t.Run(fmt.Sprintf("kill-after-round-%d", kill), func(t *testing.T) {
			diffResults(t, cfg.killAndResume(t, t.TempDir(), kill), baseline)
		})
	}
}

func TestResidualResumeParallel(t *testing.T) {
	cfg := resCfg{sites: 400, seed: 9003, weeks: 3, warmup: 7, workers: 4, every: 7}
	baseline := cfg.build("", false, 0).Run()
	for _, kill := range []int{1, 3} {
		t.Run(fmt.Sprintf("kill-after-round-%d", kill), func(t *testing.T) {
			diffResults(t, cfg.killAndResume(t, t.TempDir(), kill), baseline, "Stats")
		})
	}
}

func TestResidualResumeMidRoundWALCut(t *testing.T) {
	cfg := resCfg{sites: 400, seed: 9001, weeks: 3, warmup: 14, incStart: 2, every: 1000}
	baseline := cfg.build("", false, 0).Run()
	for _, cut := range []int{3, 900} {
		t.Run(fmt.Sprintf("cut-%d-bytes", cut), func(t *testing.T) {
			dir := t.TempDir()
			cfg.build(dir, false, 3).Run()
			walPath := filepath.Join(dir, "wal.log")
			fi, err := os.Stat(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if int64(cut) >= fi.Size() {
				t.Fatalf("cut %d >= wal size %d; shrink the cut", cut, fi.Size())
			}
			if err := os.Truncate(walPath, fi.Size()-int64(cut)); err != nil {
				t.Fatal(err)
			}
			diffResults(t, cfg.build(dir, true, 0).Run(), baseline)
		})
	}
}

// TestResidualResumeTwice is the Residual double-kill counterpart: the
// second resume only matches the uninterrupted baseline if the first
// resume kept the inherited BaseStats in the cursors it wrote.
func TestResidualResumeTwice(t *testing.T) {
	cfg := resCfg{sites: 400, seed: 9001, weeks: 3, warmup: 14, incStart: 2, every: 7}
	baseline := cfg.build("", false, 0).Run()
	for _, kills := range [][2]int{{2, 2}, {1, 3}} {
		t.Run(fmt.Sprintf("kill-after-%d-then-%d", kills[0], kills[1]), func(t *testing.T) {
			dir := t.TempDir()
			cfg.build(dir, false, kills[0]).Run()
			cfg.build(dir, true, kills[1]).Run()
			diffResults(t, cfg.build(dir, true, 0).Run(), baseline)
		})
	}
}

func TestResidualResumeCompletedCampaignIsNoop(t *testing.T) {
	cfg := resCfg{sites: 300, seed: 9007, weeks: 2, warmup: 7, every: 7}
	dir := t.TempDir()
	first := cfg.build(dir, false, 0).Run()
	again := cfg.build(dir, true, 0).Run()
	diffResults(t, again, first)
}

// TestResidualResumeRestoresNetworkCounters pins the fabric-accounting
// half of resume equivalence: the per-endpoint per-PoP query counters
// (the Fig. 7 load spread, read off the world after the run) must match
// an uninterrupted run's exactly, even though the resumed process never
// re-issues the checkpointed rounds' queries.
func TestResidualResumeRestoresNetworkCounters(t *testing.T) {
	cfg := resCfg{sites: 400, seed: 9011, weeks: 2, warmup: 7, every: 7}
	wBase := residualWorld(cfg.sites, cfg.seed)
	baseline := Residual{World: wBase, Weeks: cfg.weeks, WarmupDays: cfg.warmup}.Run()

	dir := t.TempDir()
	cfg.build(dir, false, 2).Run()
	wRes := residualWorld(cfg.sites, cfg.seed)
	resumed := Residual{World: wRes, Weeks: cfg.weeks, WarmupDays: cfg.warmup,
		CheckpointDir: dir, CheckpointEvery: cfg.every, Resume: true}.Run()

	diffResults(t, resumed, baseline)
	if !reflect.DeepEqual(wRes.Net.ExportCounters(), wBase.Net.ExportCounters()) {
		t.Fatal("resumed fabric counters differ from the uninterrupted run's")
	}
}

func TestDynamicsResumeRestoresNetworkCounters(t *testing.T) {
	cfg := dynCfg{sites: 250, seed: 8117, days: 6, every: 2}
	wBase := dynamicsWorld(cfg.sites, cfg.seed)
	baseline := Dynamics{World: wBase, Days: cfg.days}.Run()

	dir := t.TempDir()
	cfg.build(dir, false, 3).Run()
	wRes := dynamicsWorld(cfg.sites, cfg.seed)
	resumed := Dynamics{World: wRes, Days: cfg.days,
		CheckpointDir: dir, CheckpointEvery: cfg.every, Resume: true}.Run()

	diffResults(t, resumed, baseline)
	if !reflect.DeepEqual(wRes.Net.ExportCounters(), wBase.Net.ExportCounters()) {
		t.Fatal("resumed fabric counters differ from the uninterrupted run's")
	}
}

// TestCheckpointingDoesNotPerturbLegacyEquivalence closes the loop with
// the streaming≡legacy suite: a checkpointing streaming run still
// matches the legacy pipeline.
func TestCheckpointingMatchesLegacy(t *testing.T) {
	legacy := Dynamics{World: dynamicsWorld(300, 8115), Days: 6, Legacy: true}.Run()
	durable := Dynamics{World: dynamicsWorld(300, 8115), Days: 6,
		CheckpointDir: t.TempDir(), CheckpointEvery: 2}.Run()
	diffResults(t, durable, legacy)
}

func TestCheckpointRequiresStreaming(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Legacy + CheckpointDir did not panic")
		}
	}()
	Dynamics{World: dynamicsWorld(50, 1), Days: 1, Legacy: true, CheckpointDir: t.TempDir()}.Run()
}

func TestCheckpointRejectsProviderAudit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ProviderAudit + CheckpointDir did not panic")
		}
	}()
	Residual{World: residualWorld(50, 1), Weeks: 1, ProviderAudit: true, CheckpointDir: t.TempDir()}.Run()
}
