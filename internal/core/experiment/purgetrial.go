package experiment

import (
	"errors"
	"fmt"
	"math/rand"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/website"
	"rrdps/internal/world"
)

// PurgeTrial replicates the paper's controlled experiment (§V-A.3): sign a
// test website up for a provider's DPS, terminate the service the same
// day, and then probe the provider's nameservers weekly until the residual
// record disappears. The paper ran it three times against Cloudflare's
// free plan and observed the record purged at the fourth week each time.
type PurgeTrial struct {
	World    *world.World
	Provider dps.ProviderKey
	Plan     dps.Plan
	// MaxWeeks bounds the probing. Default 12.
	MaxWeeks int
}

// Trial errors.
var (
	ErrNoTestSite  = errors.New("experiment: no unprotected site available for the trial")
	ErrNeverPurged = errors.New("experiment: residual record survived the probing window")
)

// Run executes the trial and returns the week (1-based) at which the
// residual record disappeared. The world's clock advances as probing goes.
func (t PurgeTrial) Run() (int, error) {
	if t.World == nil {
		panic("experiment: PurgeTrial requires World")
	}
	w := t.World
	provider, ok := w.Provider(t.Provider)
	if !ok {
		return 0, fmt.Errorf("purge trial: unknown provider %q", t.Provider)
	}

	site, err := t.pickTestSite()
	if err != nil {
		return 0, err
	}
	apex := site.Domain().Apex

	profile := provider.Profile()
	method := profile.Methods[0]
	switch {
	case profile.Supports(dps.ReroutingNS):
		method = dps.ReroutingNS
	case profile.Supports(dps.ReroutingCNAME):
		method = dps.ReroutingCNAME
	}
	if err := site.Join(t.Provider, method, t.Plan); err != nil {
		return 0, fmt.Errorf("purge trial: %w", err)
	}
	// Capture what the prober needs before terminating.
	customer, _ := provider.Customer(apex)
	if err := site.Leave(true); err != nil {
		return 0, fmt.Errorf("purge trial: %w", err)
	}

	client := dnsresolver.NewClient(w.Net, w.Alloc.NextAddr(), netsim.RegionOregon,
		rand.New(rand.NewSource(4242)))

	maxWeeks := t.MaxWeeks
	if maxWeeks == 0 {
		maxWeeks = 12
	}
	for week := 1; week <= maxWeeks; week++ {
		w.AdvanceDays(7)
		if !t.residualAnswers(client, provider, method, apex, customer.CNAMETarget) {
			return week, nil
		}
	}
	return 0, ErrNeverPurged
}

// pickTestSite returns the first unprotected, non-multi-CDN site.
func (t PurgeTrial) pickTestSite() (*website.Site, error) {
	multiCDN := make(map[dnsmsg.Name]bool)
	for _, apex := range t.World.MultiCDNDomains() {
		multiCDN[apex] = true
	}
	for _, s := range t.World.Sites() {
		if key, _, _ := s.Provider(); key == "" && !multiCDN[s.Domain().Apex] {
			return s, nil
		}
	}
	return nil, ErrNoTestSite
}

// residualAnswers probes whether the provider still answers for the
// terminated customer.
func (t PurgeTrial) residualAnswers(client *dnsresolver.Client, provider *dps.Provider, method dps.Rerouting, apex, cnameTarget dnsmsg.Name) bool {
	switch method {
	case dps.ReroutingNS:
		pool := provider.NSPool()
		if len(pool) == 0 {
			return false
		}
		addr, _ := provider.NSPoolAddr(pool[0])
		resp, err := client.Exchange(addr, apex.Child("www"), dnsmsg.TypeA)
		return err == nil && len(resp.AnswersOfType(dnsmsg.TypeA)) > 0
	default:
		for _, nsAddr := range provider.InfraNS() {
			resp, err := client.Exchange(nsAddr, cnameTarget, dnsmsg.TypeA)
			return err == nil && resp.Header.RCode == dnsmsg.RCodeNoError &&
				len(resp.AnswersOfType(dnsmsg.TypeA)) > 0
		}
		return false
	}
}
