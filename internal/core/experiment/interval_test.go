package experiment

import (
	"math"
	"math/rand"
	"testing"

	"rrdps/internal/core/behavior"
	"rrdps/internal/world"
)

// TestUnevenIntervalsProduceSpikes reproduces the paper's observation that
// uneven experiment intervals (20-30h) inflate day-to-day variance of the
// behaviour series, while even intervals "significantly reduce the
// spikes" (§IV-B.3).
func TestUnevenIntervalsProduceSpikes(t *testing.T) {
	build := func() *world.World {
		cfg := world.PaperConfig(1200)
		cfg.Seed = 881
		cfg.JoinRate = 0.01
		cfg.LeaveRate = 0.01
		cfg.PauseRate = 0.02
		cfg.SwitchRate = 0.005
		return world.New(cfg)
	}

	variance := func(res DynamicsResult) float64 {
		var counts []float64
		for day := 1; day < res.Days; day++ {
			total := 0
			for _, kind := range behavior.AllKinds() {
				total += res.CountsByDay[day][kind]
			}
			counts = append(counts, float64(total))
		}
		mean := 0.0
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		v := 0.0
		for _, c := range counts {
			v += (c - mean) * (c - mean)
		}
		return v / float64(len(counts)) / math.Max(mean, 1) // variance-to-mean
	}

	even := Dynamics{World: build(), Days: 20}.Run()
	uneven := Dynamics{
		World: build(), Days: 20,
		LongIntervalProb: 0.5,
		Rand:             rand.New(rand.NewSource(882)),
	}.Run()

	ve, vu := variance(even), variance(uneven)
	if vu <= ve {
		t.Fatalf("uneven intervals did not inflate variance: even %.2f vs uneven %.2f", ve, vu)
	}
}

// TestLongGapsCompressReversedPairs: a PAUSE and its RESUME falling inside
// one long gap cancel out, so the uneven campaign detects fewer pause
// events than the even one — the paper's missed-reversed-pairs caveat.
func TestLongGapsCompressReversedPairs(t *testing.T) {
	build := func() *world.World {
		cfg := world.PaperConfig(1500)
		cfg.Seed = 883
		cfg.JoinRate = 0
		cfg.LeaveRate = 0
		cfg.SwitchRate = 0
		cfg.PauseRate = 0.05 // heavy pausing; ~half resume within a day
		return world.New(cfg)
	}
	even := Dynamics{World: build(), Days: 16}.Run()
	uneven := Dynamics{
		World: build(), Days: 16,
		LongIntervalProb: 0.9,
		Rand:             rand.New(rand.NewSource(884)),
	}.Run()

	evenPauses := even.CountsByDay
	_ = evenPauses
	countKind := func(res DynamicsResult, k behavior.Kind) int {
		total := 0
		for _, c := range res.CountsByDay {
			total += c[k]
		}
		return total
	}
	// The uneven run covers ~1.9x the world-days in the same number of
	// snapshots; normalize per world-day before comparing.
	evenRate := float64(countKind(even, behavior.Pause)) / float64(even.Days)
	unevenRate := float64(countKind(uneven, behavior.Pause)) / (float64(uneven.Days) * 1.9)
	if unevenRate >= evenRate {
		t.Fatalf("long gaps did not compress pauses: even %.3f/day vs uneven %.3f/day",
			evenRate, unevenRate)
	}
}
