package experiment

import (
	"testing"

	"rrdps/internal/world"
)

// TestPacketLossDoesNotFabricateBehaviours injects datagram loss into the
// fabric and freezes all churn: any detected behaviour is then a false
// positive manufactured by resolution failures. The carry-forward rule in
// the tracker (a SERVFAIL day must not read as LEAVE) is what this guards.
func TestPacketLossDoesNotFabricateBehaviours(t *testing.T) {
	cfg := world.PaperConfig(600)
	cfg.Seed = 401
	cfg.JoinRate = 0
	cfg.LeaveRate = 0
	cfg.PauseRate = 0
	cfg.SwitchRate = 0
	cfg.UnprotectedIPChangeRate = 0
	cfg.PacketLossRate = 0.03
	w := world.New(cfg)

	res := Dynamics{World: w, Days: 8}.Run()
	if len(res.Detections) != 0 {
		t.Fatalf("packet loss fabricated %d behaviours: %+v", len(res.Detections), res.Detections)
	}
}

// TestPacketLossDegradesButDoesNotBreakResidualScan: the §V campaign under
// loss still finds a subset of the lossless campaign's hidden records and
// never invents extra verified origins.
func TestPacketLossResidualScanSubset(t *testing.T) {
	clean := countermeasureConfig(403)
	cleanRes := Residual{World: world.New(clean), Weeks: 2, WarmupDays: 21}.Run()
	cleanHidden, _ := cleanRes.TotalHidden()
	if cleanHidden == 0 {
		t.Fatal("lossless baseline found nothing")
	}

	lossy := countermeasureConfig(403)
	lossy.PacketLossRate = 0.02
	lossyRes := Residual{World: world.New(lossy), Weeks: 2, WarmupDays: 21}.Run()
	lossyHidden, _ := lossyRes.TotalHidden()
	lossyVerified, _ := lossyRes.TotalVerified()

	if lossyVerified > lossyHidden {
		t.Fatalf("verified %d > hidden %d under loss", lossyVerified, lossyHidden)
	}
	// Loss can only suppress scan answers and verifications, not invent
	// them wholesale; allow broad slack since the worlds churn identically
	// by seed.
	if lossyHidden > cleanHidden*2+4 {
		t.Fatalf("lossy scan found %d hidden vs %d clean", lossyHidden, cleanHidden)
	}
}
