package experiment

import (
	"fmt"
	"testing"

	"rrdps/internal/dnsresolver"
	"rrdps/internal/netsim"
	"rrdps/internal/world"
)

// TestPacketLossDoesNotFabricateBehaviours injects datagram loss into the
// fabric and freezes all churn: any detected behaviour is then a false
// positive manufactured by resolution failures. The carry-forward rule in
// the tracker (a SERVFAIL day must not read as LEAVE) is what this guards.
func TestPacketLossDoesNotFabricateBehaviours(t *testing.T) {
	cfg := world.PaperConfig(600)
	cfg.Seed = 401
	cfg.JoinRate = 0
	cfg.LeaveRate = 0
	cfg.PauseRate = 0
	cfg.SwitchRate = 0
	cfg.UnprotectedIPChangeRate = 0
	cfg.PacketLossRate = 0.03
	w := world.New(cfg)

	res := Dynamics{World: w, Days: 8}.Run()
	if len(res.Detections) != 0 {
		t.Fatalf("packet loss fabricated %d behaviours: %+v", len(res.Detections), res.Detections)
	}
}

// hiddenSet keys every hidden record a campaign found, across both case
// studies and all weeks, so runs can be compared as sets (recall) rather
// than by totals — loss can also fabricate "hidden" records by failing
// the normal resolution a scanned address is compared against.
func hiddenSet(res ResidualResult) map[string]bool {
	out := make(map[string]bool)
	add := func(tag string, reports []WeeklyReport) {
		for _, wr := range reports {
			for _, h := range wr.Report.Hidden {
				out[fmt.Sprintf("%s|%s|%s", tag, h.Apex, h.Addr)] = true
			}
		}
	}
	add("cf", res.Cloudflare)
	add("inc", res.Incapsula)
	return out
}

// recallOf counts how many of the clean run's hidden records the lossy run
// recovered.
func recallOf(clean, lossy map[string]bool) (hit, total int) {
	for k := range clean {
		if lossy[k] {
			hit++
		}
	}
	return hit, len(clean)
}

// TestFaultRecoveryResidualRecall is the fault-recovery acceptance
// criterion: at 3% packet loss the default retry policy recovers at least
// 95% of the hidden records a lossless campaign finds, across three
// seeds. Under a much harsher deterministic fault plan (30% seeded loss
// plus flaky endpoints) the retrying campaign still recovers most of the
// clean set while the no-retry baseline measurably collapses — the margin
// the retry layer buys. Serial runs are deterministic per seed, so the
// thresholds are exact, not flaky.
func TestFaultRecoveryResidualRecall(t *testing.T) {
	noRetry := dnsresolver.NoRetryPolicy()
	harsh := netsim.FaultConfig{LossRate: 0.3, FlakyRate: 0.3}

	var uniformHit, uniformTotal int
	var harshRetryHit, harshPlainHit, harshTotal int
	for _, seed := range []int64{403, 407, 411} {
		clean := hiddenSet(Residual{
			World: world.New(countermeasureConfig(seed)), Weeks: 2, WarmupDays: 21,
		}.Run())
		if len(clean) == 0 {
			t.Fatalf("seed %d: lossless baseline found nothing", seed)
		}

		run := func(loss float64, faults netsim.FaultConfig, pol *dnsresolver.Policy) ResidualResult {
			cfg := countermeasureConfig(seed)
			cfg.PacketLossRate = loss
			cfg.Faults = faults
			return Residual{World: world.New(cfg), Weeks: 2, WarmupDays: 21, Policy: pol}.Run()
		}

		lossy := run(0.03, netsim.FaultConfig{}, nil)
		if lossy.Stats.Retries == 0 || lossy.Stats.Recovered == 0 {
			t.Fatalf("seed %d: lossy campaign shows no retry activity: %v", seed, lossy.Stats)
		}
		hit, total := recallOf(clean, hiddenSet(lossy))
		uniformHit += hit
		uniformTotal += total

		hit, _ = recallOf(clean, hiddenSet(run(0, harsh, nil)))
		harshRetryHit += hit
		hit, _ = recallOf(clean, hiddenSet(run(0, harsh, &noRetry)))
		harshPlainHit += hit
		harshTotal += total
	}

	if recall := float64(uniformHit) / float64(uniformTotal); recall < 0.95 {
		t.Fatalf("3%% loss with retries: recall %d/%d = %.1f%%, want ≥ 95%%",
			uniformHit, uniformTotal, recall*100)
	}
	if harshRetryHit <= harshPlainHit {
		t.Fatalf("harsh faults: retry recall %d/%d not above no-retry %d/%d",
			harshRetryHit, harshTotal, harshPlainHit, harshTotal)
	}
	if recall := float64(harshRetryHit) / float64(harshTotal); recall < 0.85 {
		t.Fatalf("harsh faults with retries: recall %d/%d = %.1f%%, want ≥ 85%%",
			harshRetryHit, harshTotal, recall*100)
	}
	if recall := float64(harshPlainHit) / float64(harshTotal); recall > 0.8 {
		t.Fatalf("harsh faults without retries: recall %d/%d = %.1f%% — baseline too healthy for the contrast to mean anything",
			harshPlainHit, harshTotal, recall*100)
	}
}

// TestFaultRecoveryDynamicsNoFabrication extends the packet-loss
// fabrication guard across seeds with the default retry policy active:
// with all churn frozen, a lossy fabric must yield zero detected
// behaviours — retries reduce failed resolutions, and the carry-forward
// rule masks the rest.
func TestFaultRecoveryDynamicsNoFabrication(t *testing.T) {
	for _, seed := range []int64{401, 503, 509} {
		cfg := world.PaperConfig(600)
		cfg.Seed = seed
		cfg.JoinRate = 0
		cfg.LeaveRate = 0
		cfg.PauseRate = 0
		cfg.SwitchRate = 0
		cfg.UnprotectedIPChangeRate = 0
		cfg.PacketLossRate = 0.03
		res := Dynamics{World: world.New(cfg), Days: 8}.Run()
		if len(res.Detections) != 0 {
			t.Fatalf("seed %d: loss fabricated %d behaviours: %+v", seed, len(res.Detections), res.Detections)
		}
		if res.Stats.Queries == 0 {
			t.Fatalf("seed %d: no query accounting: %+v", seed, res.Stats)
		}
	}
}

// TestPacketLossDegradesButDoesNotBreakResidualScan: the §V campaign under
// loss still finds a subset of the lossless campaign's hidden records and
// never invents extra verified origins.
func TestPacketLossResidualScanSubset(t *testing.T) {
	clean := countermeasureConfig(403)
	cleanRes := Residual{World: world.New(clean), Weeks: 2, WarmupDays: 21}.Run()
	cleanHidden, _ := cleanRes.TotalHidden()
	if cleanHidden == 0 {
		t.Fatal("lossless baseline found nothing")
	}

	lossy := countermeasureConfig(403)
	lossy.PacketLossRate = 0.02
	lossyRes := Residual{World: world.New(lossy), Weeks: 2, WarmupDays: 21}.Run()
	lossyHidden, _ := lossyRes.TotalHidden()
	lossyVerified, _ := lossyRes.TotalVerified()

	if lossyVerified > lossyHidden {
		t.Fatalf("verified %d > hidden %d under loss", lossyVerified, lossyHidden)
	}
	// Loss can only suppress scan answers and verifications, not invent
	// them wholesale; allow broad slack since the worlds churn identically
	// by seed.
	if lossyHidden > cleanHidden*2+4 {
		t.Fatalf("lossy scan found %d hidden vs %d clean", lossyHidden, cleanHidden)
	}
}
