package experiment

import (
	"fmt"

	"rrdps/internal/core/behavior"
	"rrdps/internal/core/exposure"
	"rrdps/internal/core/rrscan"
	"rrdps/internal/core/status"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/obs"
	"rrdps/internal/snapstore"
)

// The incremental engines.
//
// Run() computes a campaign in one batch shot; the engines expose the
// same campaign as a process: construct one, call AppendDay/AppendRound
// once per collection round, read Result whenever a consistent answer is
// needed, Checkpoint before a planned shutdown, Close when done. Run is
// itself implemented as "NewEngine + loop + Result", so the batch and
// incremental paths cannot drift — they are the same code, which is what
// the append≡batch equivalence suite (incremental_test.go) pins, in the
// spirit of TestStreamingMatchesLegacy.
//
// The engines are what the -follow daemon mode in cmd/dpsmeasure and
// cmd/rrscan is built on: the campaign horizon (Days / Weeks) bounds
// Run, but an engine keeps appending past it for as long as the caller
// keeps calling — the simulated Internet keeps running, each sealed
// round lands in the WAL (and periodically a checkpoint), and a
// `rrserve -follow` reader picks it up within one poll.

// DynamicsEngine is the §IV usage-dynamics campaign as an incremental
// process: each AppendDay collects one day into the live snapstore,
// streams it through the one-pass DiffPairs machinery, and updates every
// artifact in place — the Fig. 2 breakdown, the behaviour FSM, the pause
// windows, and the Table V verification rows. Construct with
// Dynamics.NewEngine.
type DynamicsEngine struct {
	cfg   Dynamics
	e     *dynamicsEnv
	store *snapstore.Store
	p     *campaignPersist

	tracker   *behavior.Tracker // built after the first day (multi-CDN detection)
	adoptions map[dnsmsg.Name]status.Adoption
	res       DynamicsResult
	nextDay   int
	randDraws int
	baseStats dnsresolver.QueryStats
	// lastFooter is the most recent sealed round's cursor blob; Checkpoint
	// reuses it so a forced checkpoint is byte-identical to the WAL footer
	// of the round it covers.
	lastFooter []byte
	closed     bool
}

// NewEngine builds the campaign's incremental engine: full setup, and —
// with CheckpointDir + Resume — recovery of the on-disk state, exactly as
// Run would perform it. Days may be zero: an engine has no horizon of its
// own (Run's loop bound and the campaign.days gauge are the only
// consumers), so a daemon caller can keep appending indefinitely.
func (d Dynamics) NewEngine() *DynamicsEngine {
	if d.World == nil {
		panic("experiment: Dynamics engine requires World")
	}
	if d.Days < 0 {
		panic("experiment: Dynamics.Days must not be negative")
	}
	if d.Legacy {
		panic("experiment: the incremental engine requires the streaming pipeline (Legacy must be false)")
	}
	return d.newEngine(d.setup())
}

func (d Dynamics) newEngine(e *dynamicsEnv) *DynamicsEngine {
	en := &DynamicsEngine{
		cfg:       d,
		e:         e,
		store:     snapstore.New(),
		adoptions: make(map[dnsmsg.Name]status.Adoption, len(e.domains)),
		res:       DynamicsResult{Days: d.Days, Unchanged: make(map[dps.ProviderKey]*UnchangedRow)},
	}
	en.store.SetWindow(d.window())
	if d.CheckpointDir == "" {
		return en
	}
	p, err := openCampaignPersist(d.CheckpointDir, d.CheckpointEvery, d.Resume)
	if err != nil {
		panic(fmt.Sprintf("experiment: %v", err))
	}
	en.p = p
	if d.Resume {
		rec, err := p.recoverState(d.window())
		if err != nil {
			panic(fmt.Sprintf("experiment: recover: %v", err))
		}
		if rec.ok {
			cur, err := decodeDynamicsCursor(rec.blob)
			if err != nil {
				panic(fmt.Sprintf("experiment: %v", err))
			}
			en.store = rec.store
			en.nextDay = cur.NextDay
			en.randDraws = cur.RandDraws
			en.baseStats = cur.BaseStats
			if cur.HaveTracker {
				en.tracker = behavior.RestoreTracker(cur.Tracker)
			}
			if cur.Adoptions != nil {
				en.adoptions = cur.Adoptions
			}
			en.res.Breakdowns = cur.Breakdowns
			if cur.Unchanged != nil {
				en.res.Unchanged = cur.Unchanged
			}
			e.resolver.Health().RestoreState(cur.Health)
			d.Obs.Restore(cur.Obs)
			advanceWorldTo(e.w, cur.WorldDay)
			if err := e.w.Net.RestoreCounters(cur.Net); err != nil {
				panic(fmt.Sprintf("experiment: %v", err))
			}
			for i := 0; i < cur.RandDraws; i++ {
				d.Rand.Float64()
			}
		}
	}
	if en.nextDay > 0 {
		// Re-establish the invariant (state = checkpoint + WAL) with a
		// fresh checkpoint — written before openWAL truncates the WAL,
		// so a crash in between cannot discard the sealed days it held.
		footer := encodeCursor(d.exportCursor(en.nextDay, en.randDraws, e, en.tracker, en.adoptions, &en.res, en.baseStats))
		if err := p.checkpointNow(e.w.Day(), en.store, footer); err != nil {
			panic(fmt.Sprintf("experiment: %v", err))
		}
	}
	if err := p.openWAL(); err != nil {
		panic(fmt.Sprintf("experiment: %v", err))
	}
	return en
}

// NextDay returns the next collection-loop index — equivalently, how
// many days the campaign has collected so far (across every resume).
func (en *DynamicsEngine) NextDay() int { return en.nextDay }

// WorldDay returns the world clock (it can run ahead of NextDay under
// long-interval jitter).
func (en *DynamicsEngine) WorldDay() int { return en.e.w.Day() }

// DayCounts returns one appended day's detection counts per kind (see
// behavior.Tracker.DayCounts); nil before the first day.
func (en *DynamicsEngine) DayCounts(day int) map[behavior.Kind]int {
	if en.tracker == nil {
		return nil
	}
	return en.tracker.DayCounts(day)
}

// LastBreakdown returns the newest appended day's Fig. 2 breakdown, or
// the zero value before the first day.
func (en *DynamicsEngine) LastBreakdown() AdoptionBreakdown {
	if len(en.res.Breakdowns) == 0 {
		return AdoptionBreakdown{}
	}
	return en.res.Breakdowns[len(en.res.Breakdowns)-1]
}

// AppendDay collects and seals one day and folds it into every artifact
// in place: the day streams into the snapstore (teed to the WAL when
// durable), one DiffPairs pass feeds the Fig. 2 breakdown, the
// classification cache, and the behaviour FSM, and the day's JOIN/RESUME
// detections are HTML-verified for Table V straight off the diff
// stream — only records that changed this day are ever re-verified. It
// returns the day's detections (the increment a daemon logs); the world
// then advances to the next snapshot.
func (en *DynamicsEngine) AppendDay() []behavior.Detection {
	if en.closed {
		panic("experiment: AppendDay on a closed engine")
	}
	d, e := en.cfg, en.e
	day := en.nextDay
	daySpan := d.Obs.Tracer().StartSpan("day", fmt.Sprintf("day %d", day))
	daySpan.SetItems(len(e.domains))
	dw := en.store.BeginDay(day)
	put := dw.Put
	if en.p != nil {
		en.p.beginDay(day)
		put = en.p.tee(dw.Put)
	}
	e.collector.CollectStream(day, put)
	dw.Seal()

	if en.tracker == nil {
		excluded := append([]dnsmsg.Name(nil), d.Excluded...)
		if !d.KeepMultiCDN {
			excluded = append(excluded, DetectMultiCDNStream(en.store.Cursor(day))...)
		}
		en.tracker = behavior.NewTracker(excluded)
	}

	b := AdoptionBreakdown{Day: day, ByProvider: make(map[dps.ProviderKey]int)}
	// changed captures the day's churned pairs straight off the diff
	// stream. A JOIN/RESUME detection only ever lands on an apex whose
	// record changed this day — classification is a pure function of the
	// record, so an unchanged record reproduces yesterday's adoption and
	// the FSM sees no transition — so the Table V verification reads its
	// IP1/IP2 inputs from here instead of re-materializing either day.
	var changed map[dnsmsg.Name]snapstore.Pair
	if day > 0 {
		changed = make(map[dnsmsg.Name]snapstore.Pair)
	}
	en.tracker.BeginDay(day)
	for pairs := en.store.DiffPairs(day); pairs.Next(); {
		p := pairs.Pair()
		unchanged := p.Unchanged()
		if changed != nil && !unchanged {
			changed[p.Apex] = p
		}
		if !p.CurOK {
			delete(en.adoptions, p.Apex)
			continue
		}
		adoption, cached := en.adoptions[p.Apex]
		if !cached || !unchanged {
			adoption = e.classifier.Classify(p.Cur)
			en.adoptions[p.Apex] = adoption
		}
		b.accum(p.Cur, adoption, e.topCut)
		if p.Cur.ResolveOK && p.Cur.NSOK && !adoption.SharedIPSuspect {
			en.tracker.ObserveOne(p.Apex, adoption)
		}
	}
	detections := en.tracker.EndDay()
	en.res.Breakdowns = append(en.res.Breakdowns, b)

	// Table V: verify origin-IP hygiene for JOIN and RESUME (§IV-C.3
	// explicitly excludes SWITCH).
	for _, det := range detections {
		if det.Kind != behavior.Join && det.Kind != behavior.Resume {
			continue
		}
		if day == 0 {
			continue // no previous day yet, as with a nil prev snapshot
		}
		pr, ok := changed[det.Apex]
		if !ok {
			panic(fmt.Sprintf("experiment: day %d %v detection on %s without a record change", day, det.Kind, det.Apex))
		}
		d.verifyDetection(&en.res, e.verifier, pr, det)
	}

	en.randDraws += d.advance(e.w)
	en.nextDay = day + 1
	if en.p != nil || d.OnSeal != nil {
		footer := encodeCursor(d.exportCursor(en.nextDay, en.randDraws, e, en.tracker, en.adoptions, &en.res, en.baseStats))
		en.lastFooter = footer
		if en.p != nil {
			if err := en.p.sealRound(e.w.Day(), en.store, footer, false); err != nil {
				panic(fmt.Sprintf("experiment: %v", err))
			}
		}
		if d.OnSeal != nil {
			d.OnSeal(en.store.SealedView(), footer)
		}
	}
	daySpan.End()
	return detections
}

// Checkpoint forces a full checkpoint (store + cursor) and truncates the
// WAL, exactly like the batch run's campaign-end checkpoint — a follower
// or a later resume needs nothing but the directory. It reuses the last
// sealed round's footer, so the checkpoint is byte-identical to what
// that round's cadence checkpoint would have carried. A no-op without a
// CheckpointDir, or before the first round sealed by this process.
func (en *DynamicsEngine) Checkpoint() {
	checkpointEngine(en.p, en.e.w.Day(), en.store, en.lastFooter)
}

// Result assembles the campaign result over everything appended so far:
// value-identical to a batch Run over the same number of days. The
// returned struct shares the engine's accumulating maps and slices, so
// read it before the next AppendDay or treat it as a snapshot that goes
// stale.
func (en *DynamicsEngine) Result() DynamicsResult {
	out := en.res
	out.Days = en.nextDay
	if en.tracker != nil {
		en.cfg.finish(&out, en.e, en.tracker, en.baseStats)
	} else {
		out.Stats = en.baseStats.Add(en.e.resolver.Stats())
		out.Sidelined = en.e.resolver.Health().Sidelined()
	}
	return out
}

// Close releases the engine's WAL handle. It does not checkpoint — call
// Checkpoint first for a clean shutdown; skipping it models a crash
// (the sealed WAL groups still resume exactly).
func (en *DynamicsEngine) Close() {
	if en.closed {
		return
	}
	en.closed = true
	if en.p != nil {
		en.p.close()
	}
}

// ResidualEngine is the §V residual-resolution campaign as an
// incremental process: each AppendRound is one collection round — a
// warm-up round while any warm-up days remain, then one weekly scan
// round (direct scan + filter + exposure fold) per call. Construct with
// Residual.NewEngine.
type ResidualEngine struct {
	cfg   Residual
	e     *residualEnv
	store *snapstore.Store
	p     *campaignPersist

	res             ResidualResult
	warmupRemaining int
	nextWeek        int
	rounds          int // rounds appended by this process
	baseStats       dnsresolver.QueryStats
	warmupSpan      *obs.Span
	lastFooter      []byte
	closed          bool
}

// NewEngine builds the campaign's incremental engine; see
// Dynamics.NewEngine for the contract. Weeks may be zero — a daemon
// caller appends rounds for as long as it wants.
func (r Residual) NewEngine() *ResidualEngine {
	if r.World == nil {
		panic("experiment: Residual engine requires World")
	}
	if r.Weeks < 0 {
		panic("experiment: Residual.Weeks must not be negative")
	}
	if r.Legacy {
		panic("experiment: the incremental engine requires the streaming pipeline (Legacy must be false)")
	}
	if r.CheckpointDir != "" && r.ProviderAudit {
		panic("experiment: checkpointing is incompatible with ProviderAudit (audits mutate provider state a rebuilt world cannot replay)")
	}
	return r.newEngine(r.setup())
}

func (r Residual) newEngine(e *residualEnv) *ResidualEngine {
	en := &ResidualEngine{
		cfg:   r,
		e:     e,
		store: snapstore.New(),
		res: ResidualResult{
			Weeks:       r.Weeks,
			CFExposure:  exposure.NewTracker(),
			IncExposure: exposure.NewTracker(),
		},
		warmupRemaining: r.WarmupDays,
		nextWeek:        1,
	}
	en.store.SetWindow(r.window())
	if r.CheckpointDir != "" {
		p, err := openCampaignPersist(r.CheckpointDir, r.CheckpointEvery, r.Resume)
		if err != nil {
			panic(fmt.Sprintf("experiment: %v", err))
		}
		en.p = p
		if r.Resume {
			rec, err := p.recoverState(r.window())
			if err != nil {
				panic(fmt.Sprintf("experiment: recover: %v", err))
			}
			if rec.ok {
				cur, err := decodeResidualCursor(rec.blob)
				if err != nil {
					panic(fmt.Sprintf("experiment: %v", err))
				}
				en.store = rec.store
				en.warmupRemaining = cur.WarmupRemaining
				en.nextWeek = cur.NextWeek
				en.baseStats = cur.BaseStats
				en.res.NameserverCount = cur.NameserverCount
				en.res.NSHostsByWeek = cur.NSHostsByWeek
				en.res.Cloudflare = cur.Cloudflare
				en.res.Incapsula = cur.Incapsula
				en.res.CFExposure = exposure.RestoreTracker(cur.CFExposure)
				en.res.IncExposure = exposure.RestoreTracker(cur.IncExposure)
				e.cnameLib.RestoreState(cur.CNAMELib)
				if err := e.scanner.RestoreState(cur.Scanner); err != nil {
					panic(fmt.Sprintf("experiment: %v", err))
				}
				e.resolver.Health().RestoreState(cur.Health)
				r.Obs.Restore(cur.Obs)
				advanceWorldTo(e.w, cur.WorldDay)
				if err := e.w.Net.RestoreCounters(cur.Net); err != nil {
					panic(fmt.Sprintf("experiment: %v", err))
				}
			}
		}
		if en.warmupRemaining < r.WarmupDays || en.nextWeek > 1 {
			// Re-establish the invariant (state = checkpoint + WAL) with a
			// fresh checkpoint — written before openWAL truncates the WAL,
			// so a crash in between cannot discard the sealed days it held.
			footer := encodeCursor(r.exportCursor(en.warmupRemaining, en.nextWeek, e, &en.res, en.baseStats))
			if err := p.checkpointNow(e.w.Day(), en.store, footer); err != nil {
				panic(fmt.Sprintf("experiment: %v", err))
			}
		}
		if err := p.openWAL(); err != nil {
			panic(fmt.Sprintf("experiment: %v", err))
		}
	}
	if en.warmupRemaining > 0 {
		en.warmupSpan = r.Obs.Tracer().StartSpan("warmup", fmt.Sprintf("%d days", en.warmupRemaining))
	}
	return en
}

// InWarmup reports whether the next AppendRound is a warm-up round.
func (en *ResidualEngine) InWarmup() bool { return en.warmupRemaining > 0 }

// NextWeek returns the next scan week (Weeks+1 once the configured
// horizon is done; it keeps counting past it under -follow).
func (en *ResidualEngine) NextWeek() int { return en.nextWeek }

// WorldDay returns the world clock.
func (en *ResidualEngine) WorldDay() int { return en.e.w.Day() }

// Rounds returns how many rounds this process has appended.
func (en *ResidualEngine) Rounds() int { return en.rounds }

// collectRound streams one collection round into the store (same
// queries, same order as the legacy Collect) and returns its day label
// for cursor replay. With persistence, the records tee into the WAL.
func (en *ResidualEngine) collectRound() int {
	day := en.e.w.Day()
	dw := en.store.BeginDay(day)
	put := dw.Put
	if en.p != nil {
		en.p.beginDay(day)
		put = en.p.tee(dw.Put)
	}
	en.e.collector.CollectStream(day, put)
	dw.Seal()
	return day
}

// sealRound closes the round's WAL group with the current cursor,
// writes a cadence checkpoint when due, and publishes the round to the
// OnSeal hook.
func (en *ResidualEngine) sealRound() {
	en.rounds++
	r := en.cfg
	if en.p == nil && r.OnSeal == nil {
		return
	}
	footer := encodeCursor(r.exportCursor(en.warmupRemaining, en.nextWeek, en.e, &en.res, en.baseStats))
	en.lastFooter = footer
	if en.p != nil {
		if err := en.p.sealRound(en.e.w.Day(), en.store, footer, false); err != nil {
			panic(fmt.Sprintf("experiment: %v", err))
		}
	}
	if r.OnSeal != nil {
		r.OnSeal(en.store.SealedView(), footer)
	}
}

// AppendRound runs one collection round and folds it into every artifact
// in place. During warm-up it collects and feeds the Incapsula CNAME
// library, then advances the world up to seven days; afterwards each
// call is one full scan week — provider audit, collection, nameserver
// discovery, the Cloudflare direct scan and Incapsula re-resolution
// through the Fig. 8 filter, and the week's exposure fold — followed by
// a week of world time.
func (en *ResidualEngine) AppendRound() {
	if en.closed {
		panic("experiment: AppendRound on a closed engine")
	}
	r, e, w := en.cfg, en.e, en.e.w
	if en.warmupRemaining > 0 {
		day := en.collectRound()
		for cur := en.store.Cursor(day); cur.Next(); {
			e.cnameLib.AddRecord(cur.Apex(), cur.Record())
		}
		en.warmupSpan.AddItems(len(e.domains))
		step := 7
		if en.warmupRemaining < step {
			step = en.warmupRemaining
		}
		w.AdvanceDays(step)
		en.warmupRemaining -= step
		en.sealRound()
		if en.warmupRemaining == 0 {
			en.warmupSpan.End()
			en.warmupSpan = nil
		}
		return
	}

	week := en.nextWeek
	weekSpan := r.Obs.Tracer().StartSpan("week", fmt.Sprintf("week %d", week))
	weekSpan.SetItems(len(e.domains))
	r.audit(e)
	// Collect at the start of the week; one cursor pass feeds both
	// snapshot consumers — the Incapsula CNAME library and the week's
	// fresh nameserver discovery.
	day := en.collectRound()
	disc := rrscan.NewNameserverDiscovery(e.cfProfile)
	for cur := en.store.Cursor(day); cur.Next(); {
		rec := cur.Record()
		e.cnameLib.AddRecord(cur.Apex(), rec)
		disc.AddRecord(rec)
	}
	nsHosts, nsAddrs := disc.Resolve(e.resolver)
	en.res.addWeekHosts(week, nsHosts)

	// The reflection flood (if configured) loads the fleet the scan is
	// about to hammer: collection and discovery above see a clean fabric,
	// so only the direct scan's recall is exposed to the attack.
	r.floodWeek(e, week, nsAddrs)
	r.scanWeek(&en.res, e, week, nsAddrs)

	// A week of usage dynamics between scans.
	w.AdvanceDays(7)
	en.nextWeek = week + 1
	en.sealRound()
	weekSpan.End()
}

// Checkpoint forces a full checkpoint; see DynamicsEngine.Checkpoint.
func (en *ResidualEngine) Checkpoint() {
	checkpointEngine(en.p, en.e.w.Day(), en.store, en.lastFooter)
}

// Result assembles the campaign result over everything appended so far;
// Weeks is the number of completed scan weeks. See
// DynamicsEngine.Result for the sharing caveat.
func (en *ResidualEngine) Result() ResidualResult {
	out := en.res
	out.Weeks = en.nextWeek - 1
	en.cfg.finish(&out, en.e, en.baseStats)
	return out
}

// Close releases the engine's WAL handle; see DynamicsEngine.Close.
func (en *ResidualEngine) Close() {
	if en.closed {
		return
	}
	en.closed = true
	if en.p != nil {
		en.p.close()
	}
}

// checkpointEngine is the shared forced-checkpoint path: write a full
// checkpoint carrying the last sealed round's footer, then truncate the
// WAL it subsumes. Skipped before anything sealed (footer nil) — a
// resumed-and-already-complete campaign must not rewrite its final
// checkpoint with a recomputed one.
func checkpointEngine(p *campaignPersist, worldDay int, store *snapstore.Store, footer []byte) {
	if p == nil || footer == nil {
		return
	}
	if err := p.checkpointNow(worldDay, store, footer); err != nil {
		panic(fmt.Sprintf("experiment: %v", err))
	}
	if err := p.wal.Reset(); err != nil {
		panic(fmt.Sprintf("experiment: %v", err))
	}
}
