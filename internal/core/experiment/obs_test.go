package experiment

import (
	"testing"

	"rrdps/internal/netsim"
	"rrdps/internal/obs"
	"rrdps/internal/world"
)

// faultyResidualWorld builds a residual-campaign world with an active
// fault plan, so the equality tests below exercise the retry/hedge paths
// where scheduling-dependent metrics actually diverge.
func faultyResidualWorld(n int, seed int64) *world.World {
	cfg := world.PaperConfig(n)
	cfg.Seed = seed
	cfg.LeaveRate = 0.01
	cfg.SwitchRate = 0.008
	cfg.JoinRate = 0.002
	cfg.Faults = netsim.FaultConfig{LossRate: 0.05, FlakyRate: 0.1}
	return world.New(cfg)
}

func runResidualObs(t *testing.T, workers int) obs.Snapshot {
	t.Helper()
	reg := obs.NewRegistry()
	Residual{
		World:   faultyResidualWorld(500, 79),
		Weeks:   2,
		Workers: workers,
		Obs:     reg,
	}.Run()
	return reg.Snapshot()
}

// TestObsSerialParallelEquality is the ISSUE 3 acceptance check: after
// identical campaigns, the deterministic slice of the registry — every
// stage counter, gauge, and histogram outside the volatile dns.* set —
// must be value-identical between a serial run and a parallel one, even
// with an active fault plan forcing retries and hedges. Run under -race
// this also shakes out unsynchronized registry access.
func TestObsSerialParallelEquality(t *testing.T) {
	serial := runResidualObs(t, 1).Deterministic()
	parallel := runResidualObs(t, 8).Deterministic()
	if !serial.Equal(parallel) {
		t.Fatalf("serial and parallel deterministic metrics differ:\n%s",
			serial.DiffNames(parallel))
	}
	if len(serial.Counters) == 0 {
		t.Fatal("deterministic snapshot has no counters — instrumentation not wired")
	}
	// The campaign must actually have hit the fault plan, or this test
	// proves nothing about resilience-path metrics.
	full := runResidualObs(t, 1)
	if full.Counters["dns.retries"] == 0 {
		t.Fatal("fault plan produced no retries; equality check is vacuous")
	}
}

// TestObsSerialRerunFullyEqual pins full determinism of the serial path:
// two serial runs over identically-seeded worlds agree on EVERY metric,
// volatile ones included — cache hit patterns, attempt counts, backoff
// histograms. Only scheduling may perturb the volatile set.
func TestObsSerialRerunFullyEqual(t *testing.T) {
	a := runResidualObs(t, 1)
	b := runResidualObs(t, 1)
	if !a.Equal(b) {
		t.Fatalf("two serial runs differ:\n%s", a.DiffNames(b))
	}
	if a.Counters["scan.queries"] == 0 || a.Counters["collect.domains"] == 0 {
		t.Fatalf("stage counters missing: %v", a.Counters)
	}
}
