package experiment

import (
	"runtime"
	"testing"

	"rrdps/internal/alexa"
	"rrdps/internal/core/collect"
	"rrdps/internal/netsim"
	"rrdps/internal/snapstore"
	"rrdps/internal/world"
)

// retainedBytes reports the heap bytes still live after build returns:
// everything build allocated but did not return (the world, the resolver,
// its cache) is collected first, so the figure is the cost of the retained
// snapshot representation alone.
func retainedBytes(build func() any) (any, uint64) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	artifact := build()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc <= before.HeapAlloc {
		return artifact, 0
	}
	return artifact, after.HeapAlloc - before.HeapAlloc
}

// memoryCampaign runs a dynamicsWorld collection campaign and hands each
// day to keep, returning whatever keep built up as the retained artifact.
func memoryCampaign(domains, days int, collectDay func(c *collect.Collector, day int)) any {
	w := dynamicsWorld(domains, 4242)
	doms := make([]alexa.Domain, 0, domains)
	for _, s := range w.Sites() {
		doms = append(doms, s.Domain())
	}
	collector := collect.New(w.NewResolver(netsim.RegionOregon), doms)
	for day := 0; day < days; day++ {
		collectDay(collector, day)
		w.AdvanceDay()
	}
	return nil
}

// retainLegacySnapshots is the map-based baseline: a campaign that keeps
// its history retains one full map snapshot per day.
func retainLegacySnapshots(domains, days int) any {
	var snaps []collect.Snapshot
	memoryCampaign(domains, days, func(c *collect.Collector, day int) {
		snaps = append(snaps, c.Collect(day))
	})
	return snaps
}

// retainSnapstore is the streaming path: the same campaign streamed into
// the delta-encoded store (window 0 = every day stays replayable).
func retainSnapstore(domains, days, window int) any {
	store := snapstore.New()
	store.SetWindow(window)
	memoryCampaign(domains, days, func(c *collect.Collector, day int) {
		dw := store.BeginDay(day)
		c.CollectStream(day, dw.Put)
		dw.Seal()
	})
	return store
}

// TestSnapstoreMemoryReduction is the acceptance guard for the tentpole's
// memory claim: retaining a 30-day campaign in the delta store must cost
// at most half of what the map-based []Snapshot history costs (in practice
// the ratio is far larger; 2x keeps the guard robust across GC accounting
// noise and -race overhead).
func TestSnapstoreMemoryReduction(t *testing.T) {
	const domains, days = 250, 30
	legacyArt, legacyBytes := retainedBytes(func() any { return retainLegacySnapshots(domains, days) })
	storeArt, storeBytes := retainedBytes(func() any { return retainSnapstore(domains, days, 0) })

	perDay := float64(domains * days)
	t.Logf("legacy maps: %d B retained (%.1f B/domain-day)", legacyBytes, float64(legacyBytes)/perDay)
	t.Logf("snapstore:   %d B retained (%.1f B/domain-day), stats %+v",
		storeBytes, float64(storeBytes)/perDay, storeArt.(*snapstore.Store).Stats())

	if storeBytes == 0 || legacyBytes < 2*storeBytes {
		t.Fatalf("retained bytes: legacy %d, snapstore %d — want >= 2x reduction", legacyBytes, storeBytes)
	}
	runtime.KeepAlive(legacyArt)
	runtime.KeepAlive(storeArt)
}

// BenchmarkDynamicsMemory reports the retained bytes/domain-day of a
// 42-day campaign under three retention strategies; allocs/op covers the
// full collection churn. Run with -benchtime=1x; numbers are recorded in
// EXPERIMENTS.md.
func BenchmarkDynamicsMemory(b *testing.B) {
	const domains, days = 300, 42
	for _, bc := range []struct {
		name  string
		build func() any
	}{
		{"legacy-maps", func() any { return retainLegacySnapshots(domains, days) }},
		{"snapstore-unbounded", func() any { return retainSnapstore(domains, days, 0) }},
		{"snapstore-window2", func() any { return retainSnapstore(domains, days, 2) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				artifact, bytes := retainedBytes(bc.build)
				b.ReportMetric(float64(bytes)/float64(domains*days), "retained-B/domain-day")
				runtime.KeepAlive(artifact)
			}
		})
	}
}

// BenchmarkDynamicsRun times the full streaming campaign end to end (the
// legacy pipeline rides along for comparison).
func BenchmarkDynamicsRun(b *testing.B) {
	run := func(b *testing.B, legacy bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w := dynamicsWorld(300, 4242)
			b.StartTimer()
			Dynamics{World: w, Days: 10, Legacy: legacy}.Run()
		}
	}
	b.Run("streaming", func(b *testing.B) { run(b, false) })
	b.Run("legacy", func(b *testing.B) { run(b, true) })
}

// BenchmarkAppendDay times the incremental engine's steady state: one
// AppendDay on a warmed 42-day campaign — collection, the DiffPairs
// pass, the FSM update, and the changed-pair Table V re-verification.
// This is the daemon mode's per-round cost and the number EXPERIMENTS.md
// contrasts with re-running the whole batch campaign.
//
// The world is quiescent (all churn hazards zeroed) so every record is
// unchanged day over day: allocs/op is then deterministic enough for the
// CI bench gate, and the gate guards exactly the incremental-path
// promise — an unchanged domain must cost no re-classification and no
// re-verification, so any regression that re-touches unchanged records
// (the failure mode the engine refactor exists to prevent) shows up as
// an allocation jump. The churned-path cost rides along ungated in
// BenchmarkDynamicsRun.
func BenchmarkAppendDay(b *testing.B) {
	cfg := world.PaperConfig(500)
	cfg.Seed = 4242
	cfg.JoinRate, cfg.LeaveRate, cfg.PauseRate, cfg.SwitchRate = 0, 0, 0, 0
	en := Dynamics{World: world.New(cfg)}.NewEngine()
	defer en.Close()
	for en.NextDay() < 42 {
		en.AppendDay()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en.AppendDay()
	}
}
