package experiment

// The keystone suite for the incremental engines: driving a campaign
// through NewEngine + AppendDay/AppendRound — one round at a time, in
// any process arrangement — must produce artifacts value-identical to a
// single batch Run over the same day range. The suite covers the plain
// engine loop, long-interval jitter, parallel collection, a crash
// (Close without Checkpoint) and resume mid-stream, a 2-shard split
// merged back together, and the incremental Table V re-verification.
//
// Run with -race: the engines claim AppendDay publishes each sealed
// round before returning, and the daemon binaries call the accessors
// from the same goroutine — but the collector fans out internally, so
// the race detector guards the engine's aggregation step.

import (
	"fmt"
	"math/rand"
	"testing"

	"rrdps/internal/alexa"
	"rrdps/internal/obs"
)

// driveDynamics appends days one at a time to the configured horizon,
// force-checkpoints, and assembles the result — the daemon loop in
// miniature. The config's Days is left at zero, daemon style, so the
// test also pins that an engine needs no horizon of its own.
func driveDynamics(t *testing.T, cfg Dynamics, days int) DynamicsResult {
	t.Helper()
	en := cfg.NewEngine()
	defer en.Close()
	for en.NextDay() < days {
		en.AppendDay()
	}
	en.Checkpoint()
	return en.Result()
}

// driveResidual appends collection rounds (warm-up steps, then scan
// weeks) to the configured horizon, daemon style.
func driveResidual(t *testing.T, cfg Residual, weeks int) ResidualResult {
	t.Helper()
	en := cfg.NewEngine()
	defer en.Close()
	for en.InWarmup() || en.NextWeek() <= weeks {
		en.AppendRound()
	}
	en.Checkpoint()
	return en.Result()
}

func TestAppendDayMatchesBatch(t *testing.T) {
	t.Run("serial", func(t *testing.T) {
		batch := Dynamics{World: dynamicsWorld(400, 4242), Days: 12}.Run()
		engine := driveDynamics(t, Dynamics{World: dynamicsWorld(400, 4242)}, 12)
		diffResults(t, engine, batch)
	})

	t.Run("long-intervals", func(t *testing.T) {
		mk := func() Dynamics {
			return Dynamics{
				World:            dynamicsWorld(300, 777),
				LongIntervalProb: 0.3,
				Rand:             rand.New(rand.NewSource(7)),
			}
		}
		batchCfg := mk()
		batchCfg.Days = 10
		batch := batchCfg.Run()
		engine := driveDynamics(t, mk(), 10)
		diffResults(t, engine, batch)
	})

	t.Run("parallel-workers", func(t *testing.T) {
		mk := func() Dynamics {
			return Dynamics{World: dynamicsWorld(300, 778), Workers: 4}
		}
		batchCfg := mk()
		batchCfg.Days = 8
		// Workers > 1: resolver stats depend on goroutine interleaving over
		// the shared cache, the usual serial≡parallel latitude.
		diffResults(t, driveDynamics(t, mk(), 8), batchCfg.Run(), "Stats")
	})
}

func TestAppendRoundMatchesBatch(t *testing.T) {
	t.Run("warmup-and-weeks", func(t *testing.T) {
		mk := func() Residual {
			return Residual{
				World:              residualWorld(400, 4242),
				WarmupDays:         21,
				IncapsulaStartWeek: 4,
			}
		}
		batchCfg := mk()
		batchCfg.Weeks = 5
		diffResults(t, driveResidual(t, mk(), 5), batchCfg.Run())
	})

	t.Run("parallel-workers", func(t *testing.T) {
		mk := func() Residual {
			return Residual{World: residualWorld(300, 77), WarmupDays: 14, Workers: 4}
		}
		batchCfg := mk()
		batchCfg.Weeks = 3
		diffResults(t, driveResidual(t, mk(), 3), batchCfg.Run(), "Stats")
	})
}

// TestAppendDayKillResume crashes the engine mid-stream — Close WITHOUT
// Checkpoint, so recovery leans on the sealed WAL groups alone — and
// finishes the campaign from a second engine over a fresh world replica.
// The stitched result must be value-identical to an uninterrupted batch
// run without any checkpointing at all.
func TestAppendDayKillResume(t *testing.T) {
	const days, seed = 9, 9001
	mk := func() Dynamics { return Dynamics{World: dynamicsWorld(300, seed)} }
	batchCfg := mk()
	batchCfg.Days = days
	baseline := batchCfg.Run()

	for _, kill := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("kill-after-day-%d", kill), func(t *testing.T) {
			dir := t.TempDir()
			crashed := mk()
			crashed.CheckpointDir, crashed.CheckpointEvery = dir, 3
			en := crashed.NewEngine()
			for i := 0; i < kill; i++ {
				en.AppendDay()
			}
			en.Close() // crash: no final Checkpoint

			resumed := mk()
			resumed.CheckpointDir, resumed.CheckpointEvery = dir, 3
			resumed.Resume = true
			en2 := resumed.NewEngine()
			defer en2.Close()
			if got := en2.NextDay(); got != kill {
				t.Fatalf("resumed engine starts at day %d, want %d", got, kill)
			}
			for en2.NextDay() < days {
				en2.AppendDay()
			}
			en2.Checkpoint()
			diffResults(t, en2.Result(), baseline)
		})
	}
}

func TestAppendRoundKillResume(t *testing.T) {
	const weeks, warmup, seed = 3, 14, 9007
	mk := func() Residual {
		return Residual{World: residualWorld(300, seed), WarmupDays: warmup}
	}
	batchCfg := mk()
	batchCfg.Weeks = weeks
	baseline := batchCfg.Run()

	// Rounds: 2 warm-up steps (14 days at 7 per round), then 3 scan weeks.
	for _, kill := range []int{1, 3} { // mid-warm-up and mid-weeks
		t.Run(fmt.Sprintf("kill-after-round-%d", kill), func(t *testing.T) {
			dir := t.TempDir()
			crashed := mk()
			crashed.CheckpointDir, crashed.CheckpointEvery = dir, 10
			en := crashed.NewEngine()
			for i := 0; i < kill; i++ {
				en.AppendRound()
			}
			en.Close() // crash: no final Checkpoint

			resumed := mk()
			resumed.CheckpointDir, resumed.CheckpointEvery = dir, 10
			resumed.Resume = true
			en2 := resumed.NewEngine()
			defer en2.Close()
			for en2.InWarmup() || en2.NextWeek() <= weeks {
				en2.AppendRound()
			}
			en2.Checkpoint()
			diffResults(t, en2.Result(), baseline)
		})
	}
}

// TestAppendDayShardedMerge splits the population across two incremental
// engines — each over its own world replica, appending days in lockstep —
// and merges the results. Merge(engine shards) must equal an unsharded
// batch run, with the standing Stats/Sidelined latitude (shared
// infrastructure queries are issued once per shard).
func TestAppendDayShardedMerge(t *testing.T) {
	const days, sites, seed = 8, 400, 6101
	unshardedCfg := Dynamics{World: dynamicsWorld(sites, seed), Days: days}
	baseline := unshardedCfg.Run()

	// The whole population's top-bucket cutoff: each shard must bucket
	// against it, not against its shard-local population.
	topCut := sites / 100
	if topCut < 1 {
		topCut = 1
	}
	engines := make([]*DynamicsEngine, 2)
	for i := range engines {
		shard := i
		engines[i] = Dynamics{
			World:  dynamicsWorld(sites, seed), // per-shard world replica
			Keep:   func(d alexa.Domain) bool { return d.Rank%2 == shard },
			TopCut: topCut,
		}.NewEngine()
		defer engines[i].Close()
	}
	for day := 0; day < days; day++ {
		for _, en := range engines {
			en.AppendDay()
		}
	}
	merged := engines[0].Result().Merge(engines[1].Result())
	diffResults(t, merged, baseline, "Stats", "Sidelined")
}

// TestAppendDayIncrementalReverify pins the incremental Table V
// re-verification: each AppendDay HTML-verifies at most as many domains
// as churned that day (the diff stream's changed pairs), never the whole
// population — and over a full campaign the verification workload is
// identical to the legacy pipeline's, which re-materializes both days as
// maps. The verify.* counters are the observable.
func TestAppendDayIncrementalReverify(t *testing.T) {
	const days, sites, seed = 12, 400, 4242

	legacyReg := obs.NewRegistry()
	Dynamics{World: dynamicsWorld(sites, seed), Days: days, Legacy: true, Obs: legacyReg}.Run()
	legacyComparisons := legacyReg.Counter("verify.comparisons").Value()

	reg := obs.NewRegistry()
	en := Dynamics{World: dynamicsWorld(sites, seed), Obs: reg, SnapWindow: -1}.NewEngine()
	defer en.Close()
	comparisons := reg.Counter("verify.comparisons")

	var prev uint64
	for day := 0; day < days; day++ {
		en.AppendDay()
		delta := comparisons.Value() - prev
		prev = comparisons.Value()

		changed := 0
		for pairs := en.store.DiffPairs(day); pairs.Next(); {
			if !pairs.Pair().Unchanged() {
				changed++
			}
		}
		if day == 0 {
			if delta != 0 {
				t.Fatalf("day 0 ran %d verifications; there is no previous day to compare against", delta)
			}
			continue
		}
		if int(delta) > changed {
			t.Errorf("day %d: %d verifications for %d changed records — the engine re-verified unchanged domains",
				day, delta, changed)
		}
		if changed >= sites {
			t.Errorf("day %d: every record changed (%d of %d); the churn model broke and the bound above is vacuous",
				day, changed, sites)
		}
	}
	if got := comparisons.Value(); got != legacyComparisons {
		t.Errorf("campaign verification workload: engine %d comparisons, legacy %d", got, legacyComparisons)
	}
	if legacyComparisons == 0 {
		t.Error("no verifications at all; the workload comparison is vacuous")
	}
}
