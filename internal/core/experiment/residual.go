package experiment

import (
	"fmt"
	"net/netip"
	"sort"

	"rrdps/internal/alexa"
	"rrdps/internal/core/collect"
	"rrdps/internal/core/exposure"
	"rrdps/internal/core/filter"
	"rrdps/internal/core/htmlverify"
	"rrdps/internal/core/match"
	"rrdps/internal/core/rrscan"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/obs"
	"rrdps/internal/snapstore"
	"rrdps/internal/world"
)

// WeeklyReport is one week's filtering result for one provider.
type WeeklyReport struct {
	Week   int
	Report filter.Report
}

// ResidualResult carries the §V campaign outputs: the per-week Table VI
// rows and Fig. 9 exposure timelines for both case studies.
type ResidualResult struct {
	// Weeks is the number of weekly scans performed.
	Weeks int
	// Cloudflare / Incapsula hold per-week reports.
	Cloudflare []WeeklyReport
	Incapsula  []WeeklyReport
	// CFExposure / IncExposure are the week-over-week trackers.
	CFExposure  *exposure.Tracker
	IncExposure *exposure.Tracker
	// NameserverCount is how many Cloudflare NS-rerouting nameservers the
	// scan discovered (the paper's 391) — the largest single week's count.
	NameserverCount int
	// NSHostsByWeek records each scan week's discovered NS-rerouting
	// hosts, sorted. NameserverCount derives from it (max weekly set
	// size). The per-week sets exist so shard merges stay exact:
	// discovery accumulates per record, so the union of the shards'
	// weekly sets equals the whole population's weekly set, and the max
	// must be taken after that union — merging the per-shard maxima
	// alone would undercount.
	NSHostsByWeek map[int][]dnsmsg.Name
	// Stats aggregates the campaign's resilience accounting: the shared
	// collector/filter resolver (counted once) plus every scan vantage
	// client.
	Stats dnsresolver.QueryStats
	// Sidelined lists the nameservers still sidelined by health tracking
	// when the campaign ended, across the resolver and vantage clients.
	Sidelined []netip.Addr
}

// Residual runs the §V residual-resolution campaign over a world:
// daily world advancement with periodic collection, plus weekly direct
// scans of Cloudflare's nameservers (6 weeks in the paper) and weekly
// re-resolution of Incapsula CNAMEs (3 weeks in the paper, here aligned to
// the same weekly cadence).
type Residual struct {
	World *world.World
	// Weeks is the number of weekly scan rounds.
	Weeks int
	// IncapsulaStartWeek is the first week (1-based) the Incapsula
	// re-resolution runs, delaying that case study (the paper's Incapsula
	// study covers the last three weeks). Zero or one starts at week 1.
	IncapsulaStartWeek int
	// Keep, when non-nil, restricts the campaign to the domains it
	// accepts. The shard-parallel driver (internal/shardrun) partitions
	// the apex population by giving each shard's campaign its membership
	// predicate; an unsharded campaign leaves it nil.
	Keep func(alexa.Domain) bool
	// WarmupDays advances the world before the first scan so the
	// population carries history (terminated customers, stale records),
	// as the real Internet does. Snapshots are still collected weekly
	// during warm-up so the CNAME library sees pre-scan customers.
	WarmupDays int
	// ProviderAudit enables the §VI-B.1 provider-side countermeasure:
	// every week Cloudflare and Incapsula audit their terminated
	// customers against public resolution and purge mismatches.
	ProviderAudit bool
	// Workers sets the parallelism of every measurement loop in the
	// campaign — collection, the direct scan, the CNAME re-resolution, and
	// the filter pipeline. Zero or one means serial. Results are
	// value-identical to a serial run: the world only advances between
	// measurement passes, and each pass fans out with deterministic
	// per-index assignment and ordered fan-in.
	Workers int
	// Policy overrides the retry policy installed on the campaign's
	// resolver and scan vantage clients. Nil means
	// dnsresolver.DefaultPolicy(): 3 attempts with backoff, hedging, and
	// nameserver health sidelining. Point it at a NoRetryPolicy value to
	// measure the unprotected baseline.
	Policy *dnsresolver.Policy
	// Obs, when non-nil, receives the campaign's metrics and phase spans:
	// stage counters from every component, dns.* resilience counters from
	// the shared resolver and each vantage client, and per-week spans.
	Obs *obs.Registry
	// SnapWindow bounds the streaming pipeline's snapshot retention, in
	// days (really: in collection rounds — the campaign collects once per
	// warm-up step and once per week). Zero keeps the default of 1: only
	// the current round's snapshot is ever read, so nothing older needs to
	// stay replayable. Negative retains every round. Ignored by Legacy.
	SnapWindow int
	// Legacy runs the original map-based pipeline that materializes each
	// collection round as a full collect.Snapshot. It exists so
	// TestStreamingMatchesLegacy can pin the streaming pipeline's outputs
	// against it; new code should leave it false.
	Legacy bool
	// CheckpointDir, when non-empty, makes the campaign durable: every
	// collection round is teed into a write-ahead log in the directory,
	// and a full checkpoint (store + campaign cursor) is written every
	// CheckpointEvery world days — see internal/snapdisk. Requires the
	// streaming pipeline, and is incompatible with ProviderAudit (the
	// audit mutates provider state through queries that a rebuilt world
	// cannot replay).
	CheckpointDir string
	// CheckpointEvery is the full-checkpoint cadence in world days.
	// Zero means 7 (one checkpoint per weekly round).
	CheckpointEvery int
	// Resume continues the campaign recorded in CheckpointDir instead of
	// starting over. The caller must supply a *fresh* World built from
	// the same config and seed as the interrupted run, and the same
	// campaign configuration; the resumed result is value-identical to
	// an uninterrupted run. With no state in CheckpointDir the campaign
	// simply starts from the beginning.
	Resume bool

	// Attack, when non-nil, runs a reflection flood against the scanned
	// provider's nameservers alongside each weekly scan — see AttackLoad.
	// Pair with world.Config.NSRateLimit to make the flood and the
	// scanner compete for the nameservers' response budget.
	Attack *AttackLoad

	// Scenario, when non-nil, records which declarative scenario spec
	// produced this campaign; it rides along into every checkpoint and
	// WAL footer so rrserve can answer "what scenario produced this
	// epoch". It does not influence the computation.
	Scenario *ScenarioInfo

	// StopAfterRounds, when positive, stops the campaign after that many
	// collection rounds (warm-up rounds count) and returns the partial
	// result — the test hook that simulates a kill at a round boundary.
	// Exported so the shard-parallel driver's crash/resume suite
	// (internal/shardrun) can kill one shard's campaign while its
	// siblings run to completion.
	StopAfterRounds int

	// OnSeal, when non-nil, runs after every sealed collection round with
	// an immutable view of the store's sealed rounds and the round's
	// campaign-cursor blob — the same blob a checkpoint would carry, so a
	// live consumer (the lookup service) sees exactly what a
	// checkpoint-loaded one would. The hook runs on the campaign
	// goroutine between Seal and the next BeginDay; the view and blob
	// stay valid after it returns. Requires the streaming pipeline.
	OnSeal func(*snapstore.View, []byte)
}

// Run executes the campaign. The world's clock advances Weeks*7 days.
//
// By default the campaign runs the streaming snapstore pipeline: each
// collection round streams into a delta-encoded snapstore.Store and a
// single cursor pass feeds every snapshot consumer (the Incapsula CNAME
// library and the week's nameserver discovery). Legacy selects the
// original map-based pipeline; both produce value-identical results,
// pinned by TestStreamingMatchesLegacy.
func (r Residual) Run() ResidualResult {
	if r.World == nil || r.Weeks <= 0 {
		panic("experiment: Residual requires World and positive Weeks")
	}
	if r.CheckpointDir != "" && r.Legacy {
		panic("experiment: checkpointing requires the streaming pipeline (Legacy must be false)")
	}
	if r.OnSeal != nil && r.Legacy {
		panic("experiment: OnSeal requires the streaming pipeline (Legacy must be false)")
	}
	if r.CheckpointDir != "" && r.ProviderAudit {
		panic("experiment: checkpointing is incompatible with ProviderAudit (audits mutate provider state a rebuilt world cannot replay)")
	}
	e := r.setup()
	if r.Legacy {
		return r.runLegacy(e)
	}
	return r.runStreaming(e)
}

// residualEnv is the wiring shared by the legacy and streaming pipelines.
type residualEnv struct {
	w         *world.World
	resolver  *dnsresolver.Resolver
	domains   []alexa.Domain
	collector *collect.Collector
	pipeline  *filter.Pipeline
	scanner   *rrscan.Scanner
	cnameLib  *rrscan.CNAMELibrary
	cfProfile dps.Profile
	attack    *attackEnv // reflection-flood infra, nil without AttackLoad
}

func (r Residual) setup() *residualEnv {
	w := r.World

	resolver := w.NewResolver(netsim.RegionOregon)
	domains := make([]alexa.Domain, 0, len(w.Sites()))
	for _, s := range w.Sites() {
		dom := s.Domain()
		if r.Keep != nil && !r.Keep(dom) {
			continue
		}
		domains = append(domains, dom)
	}
	collector := collect.New(resolver, domains)
	matcher := match.New(w.Registry, dps.Profiles())
	verifier := htmlverify.New(w.NewHTTPClient(netsim.RegionOregon))
	pipeline := filter.New(matcher, resolver, verifier)

	var vantage []*dnsresolver.Client
	for _, region := range netsim.VantageRegions() {
		vantage = append(vantage, w.NewResolver(region).Client())
	}
	scanner := rrscan.NewScanner(vantage)
	cnameLib := rrscan.NewCNAMELibrary(dps.Incapsula, matcher)

	policy := dnsresolver.DefaultPolicy()
	if r.Policy != nil {
		policy = *r.Policy
	}
	resolver.SetPolicy(policy)
	scanner.SetPolicy(policy)

	if r.Workers > 1 {
		collector.SetWorkers(r.Workers)
		scanner.SetWorkers(r.Workers)
		cnameLib.SetWorkers(r.Workers)
		pipeline.SetWorkers(r.Workers)
	}

	if r.Obs != nil {
		collector.SetObserver(r.Obs)
		scanner.SetObserver(r.Obs)
		cnameLib.SetObserver(r.Obs)
		pipeline.SetObserver(r.Obs)
		r.Obs.Gauge("campaign.weeks").Set(int64(r.Weeks))
		r.Obs.Gauge("campaign.domains").Set(int64(len(domains)))
	}

	cfProfile, _ := dps.ProfileFor(dps.Cloudflare)
	e := &residualEnv{
		w:         w,
		resolver:  resolver,
		domains:   domains,
		collector: collector,
		pipeline:  pipeline,
		scanner:   scanner,
		cnameLib:  cnameLib,
		cfProfile: cfProfile,
	}
	r.setupAttack(e)
	return e
}

// audit runs the §VI-B.1 provider-side countermeasure when enabled.
func (r Residual) audit(e *residualEnv) {
	if !r.ProviderAudit {
		return
	}
	e.resolver.PurgeCache()
	auditLookup := func(name dnsmsg.Name) []netip.Addr {
		res, err := e.resolver.Resolve(name, dnsmsg.TypeA)
		if err != nil {
			return nil
		}
		return res.Addrs()
	}
	for _, key := range []dps.ProviderKey{dps.Cloudflare, dps.Incapsula} {
		if p, ok := e.w.Provider(key); ok {
			p.AuditTerminated(auditLookup)
		}
	}
}

// scanWeek runs the part of one weekly round that is identical in both
// pipelines: the Cloudflare direct scan + filter, and the Incapsula
// CNAME-library re-resolution + filter.
func (r Residual) scanWeek(res *ResidualResult, e *residualEnv, week int, nsAddrs []netip.Addr) {
	// Cloudflare case study: direct scan of all domains.
	scanned := e.scanner.ScanDirect(nsAddrs, e.domains)
	e.resolver.PurgeCache()
	cfReport := e.pipeline.Run(dps.Cloudflare, scanned)
	res.Cloudflare = append(res.Cloudflare, WeeklyReport{Week: week, Report: cfReport})
	res.CFExposure.AddWeek(week, cfReport)

	// Incapsula case study: re-resolve the CNAME library starting at
	// IncapsulaStartWeek itself. (This was `week >` for a while, which
	// silently skipped the named start week — with the paper's
	// "last three weeks of six" config that dropped a third of the
	// Incapsula observations.)
	if week >= r.IncapsulaStartWeek {
		incScanned := e.cnameLib.ResolveAll(e.resolver)
		incReport := e.pipeline.Run(dps.Incapsula, incScanned)
		res.Incapsula = append(res.Incapsula, WeeklyReport{Week: week, Report: incReport})
		res.IncExposure.AddWeek(week, incReport)
	}
}

// finish merges the campaign's resilience accounting: the collector,
// filter pipeline, CNAME library, and nameserver discovery all share one
// resolver; count it once, then add each scan vantage client. base is
// the accounting a resumed campaign inherited from before the restart
// (zero otherwise).
func (r Residual) finish(res *ResidualResult, e *residualEnv, base dnsresolver.QueryStats) {
	res.Stats = base.Add(e.resolver.Stats().Add(e.scanner.Stats()))
	res.Sidelined = mergeSidelined(e.resolver.Health().Sidelined(), e.scanner.Sidelined())
}

// runLegacy is the original map-based pipeline: each collection round
// materializes a full collect.Snapshot for its consumers.
func (r Residual) runLegacy(e *residualEnv) ResidualResult {
	w := e.w
	res := ResidualResult{
		Weeks:       r.Weeks,
		CFExposure:  exposure.NewTracker(),
		IncExposure: exposure.NewTracker(),
	}

	// Warm-up: age the world so the first scan already sees residue, and
	// feed the CNAME library weekly along the way.
	var warmupSpan *obs.Span
	if r.WarmupDays > 0 {
		warmupSpan = r.Obs.Tracer().StartSpan("warmup", fmt.Sprintf("%d days", r.WarmupDays))
	}
	for remaining := r.WarmupDays; remaining > 0; {
		e.cnameLib.AddSnapshot(e.collector.Collect(w.Day()))
		warmupSpan.AddItems(len(e.domains))
		step := 7
		if remaining < step {
			step = remaining
		}
		w.AdvanceDays(step)
		remaining -= step
	}
	warmupSpan.End()

	for week := 1; week <= r.Weeks; week++ {
		weekSpan := r.Obs.Tracer().StartSpan("week", fmt.Sprintf("week %d", week))
		weekSpan.SetItems(len(e.domains))
		r.audit(e)
		// Collect a fresh snapshot at the start of the week; it feeds
		// nameserver discovery and the Incapsula CNAME library.
		snap := e.collector.Collect(w.Day())
		e.cnameLib.AddSnapshot(snap)

		nsHosts, nsAddrs := rrscan.DiscoverNameservers([]collect.Snapshot{snap}, e.cfProfile, e.resolver)
		res.addWeekHosts(week, nsHosts)

		r.floodWeek(e, week, nsAddrs)
		r.scanWeek(&res, e, week, nsAddrs)

		// A week of usage dynamics between scans.
		w.AdvanceDays(7)
		weekSpan.End()
	}

	r.finish(&res, e, dnsresolver.QueryStats{})
	return res
}

// window resolves SnapWindow for the streaming pipeline.
func (r Residual) window() int {
	switch {
	case r.SnapWindow < 0:
		return 0 // unbounded: keep every collection round replayable
	case r.SnapWindow < 1:
		return 1 // minimum: only the current round is ever read
	default:
		return r.SnapWindow
	}
}

// runStreaming is the snapstore pipeline, expressed as the incremental
// engine driven to the configured horizon: NewEngine absorbs the
// persistence/recovery setup, each loop turn appends exactly one
// collection round (warm-up step or scan week), and a final forced
// checkpoint seals the campaign. Batch and daemon callers therefore
// share every line of per-round logic.
func (r Residual) runStreaming(e *residualEnv) ResidualResult {
	en := r.newEngine(e)
	defer en.Close()
	for en.warmupRemaining > 0 || en.nextWeek <= r.Weeks {
		// The final scan week checkpoints regardless of StopAfterRounds,
		// like the pre-engine pipeline's force flag.
		final := en.warmupRemaining == 0 && en.nextWeek == r.Weeks
		en.AppendRound()
		if r.StopAfterRounds > 0 && en.rounds >= r.StopAfterRounds && !final {
			return en.res // simulated kill; the partial result is not meaningful
		}
	}
	en.Checkpoint()
	return en.Result()
}

// mergeSidelined unions sorted sideline lists, keeping the result sorted
// and duplicate-free.
func mergeSidelined(lists ...[]netip.Addr) []netip.Addr {
	seen := make(map[netip.Addr]bool)
	var out []netip.Addr
	for _, list := range lists {
		for _, addr := range list {
			if !seen[addr] {
				seen[addr] = true
				out = append(out, addr)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// addWeekHosts records one week's discovered NS-rerouting hosts and
// folds the week into NameserverCount. hosts arrive sorted from the
// discovery's Resolve.
func (r *ResidualResult) addWeekHosts(week int, hosts []dnsmsg.Name) {
	if r.NSHostsByWeek == nil {
		r.NSHostsByWeek = make(map[int][]dnsmsg.Name)
	}
	r.NSHostsByWeek[week] = append([]dnsmsg.Name(nil), hosts...)
	if len(hosts) > r.NameserverCount {
		r.NameserverCount = len(hosts)
	}
}

// TotalHidden returns the distinct hidden-record counts (Table VI totals).
func (r ResidualResult) TotalHidden() (cloudflare, incapsula int) {
	return r.CFExposure.TotalHidden(), r.IncExposure.TotalHidden()
}

// TotalVerified returns the distinct verified-origin counts.
func (r ResidualResult) TotalVerified() (cloudflare, incapsula int) {
	return r.CFExposure.TotalVerified(), r.IncExposure.TotalVerified()
}

// String renders a one-line summary.
func (r ResidualResult) String() string {
	ch, ih := r.TotalHidden()
	cv, iv := r.TotalVerified()
	return fmt.Sprintf("residual: %d weeks, cloudflare %d hidden/%d verified, incapsula %d hidden/%d verified",
		r.Weeks, ch, cv, ih, iv)
}
