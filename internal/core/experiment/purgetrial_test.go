package experiment

import (
	"errors"
	"testing"

	"rrdps/internal/dps"
	"rrdps/internal/world"
)

func purgeTrialWorld(seed int64) *world.World {
	cfg := world.PaperConfig(200)
	cfg.Seed = seed
	// Freeze churn: the trial controls its own site.
	cfg.JoinRate, cfg.LeaveRate, cfg.PauseRate, cfg.SwitchRate = 0, 0, 0, 0
	cfg.UnprotectedIPChangeRate = 0
	return world.New(cfg)
}

// TestPurgeTrialFreePlanFourWeeks reproduces the paper's §V-A.3 trial: the
// free-plan residual record disappears at the fourth week. The paper ran
// it three times; so do we.
func TestPurgeTrialFreePlanFourWeeks(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		w := purgeTrialWorld(int64(601 + trial))
		week, err := PurgeTrial{World: w, Provider: dps.Cloudflare, Plan: dps.PlanFree}.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if week != 4 {
			t.Fatalf("trial %d: purged at week %d, want 4 (28-day free-plan delay)", trial, week)
		}
	}
}

// TestPurgeTrialPaidPlanLater: the paper speculates longer exposures come
// from non-free plans; the paid plan's record survives past week 4.
func TestPurgeTrialPaidPlanLater(t *testing.T) {
	w := purgeTrialWorld(611)
	week, err := PurgeTrial{World: w, Provider: dps.Cloudflare, Plan: dps.PlanPaid}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if week <= 4 {
		t.Fatalf("paid-plan record purged at week %d, want later than free plan", week)
	}
}

// TestPurgeTrialIncapsulaCNAME runs the trial against the CNAME-rerouting
// provider.
func TestPurgeTrialIncapsulaCNAME(t *testing.T) {
	w := purgeTrialWorld(613)
	week, err := PurgeTrial{World: w, Provider: dps.Incapsula, Plan: dps.PlanFree}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if week != 4 {
		t.Fatalf("incapsula purge at week %d, want 4", week)
	}
}

// TestPurgeTrialCleanProviderImmediate: a clean-policy provider never has
// a residual record, so week 1's probe already finds nothing.
func TestPurgeTrialCleanProviderImmediate(t *testing.T) {
	w := purgeTrialWorld(617)
	week, err := PurgeTrial{World: w, Provider: dps.Fastly, Plan: dps.PlanFree}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if week != 1 {
		t.Fatalf("clean provider probe week = %d, want 1", week)
	}
}

// TestPurgeTrialNeverPurged: bounding MaxWeeks below the purge delay
// yields ErrNeverPurged.
func TestPurgeTrialNeverPurged(t *testing.T) {
	w := purgeTrialWorld(619)
	_, err := PurgeTrial{World: w, Provider: dps.Cloudflare, Plan: dps.PlanPaid, MaxWeeks: 2}.Run()
	if !errors.Is(err, ErrNeverPurged) {
		t.Fatalf("err = %v, want ErrNeverPurged", err)
	}
}

func TestPurgeTrialUnknownProvider(t *testing.T) {
	w := purgeTrialWorld(621)
	if _, err := (PurgeTrial{World: w, Provider: "nonesuch", Plan: dps.PlanFree}).Run(); err == nil {
		t.Fatal("unknown provider succeeded")
	}
}
