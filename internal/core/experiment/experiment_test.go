package experiment

import (
	"strings"
	"testing"

	"rrdps/internal/core/behavior"
	"rrdps/internal/dps"
	"rrdps/internal/world"
)

// dynamicsWorld builds a world with boosted churn so short runs produce
// every behaviour.
func dynamicsWorld(n int, seed int64) *world.World {
	cfg := world.PaperConfig(n)
	cfg.Seed = seed
	cfg.JoinRate = 0.01
	cfg.LeaveRate = 0.02
	cfg.PauseRate = 0.04
	cfg.SwitchRate = 0.01
	return world.New(cfg)
}

func truthCounts(w *world.World, maxDay int) map[world.BehaviorKind]int {
	out := make(map[world.BehaviorKind]int)
	for _, e := range w.Events() {
		if e.Day <= maxDay {
			out[e.Kind]++
		}
	}
	return out
}

func TestDynamicsDetectsGroundTruth(t *testing.T) {
	w := dynamicsWorld(800, 41)
	const days = 12
	res := Dynamics{World: w, Days: days}.Run()

	// Events on days 0..days-2 are visible to snapshots 1..days-1.
	truth := truthCounts(w, days-2)
	detected := map[world.BehaviorKind]int{}
	for _, d := range res.Detections {
		switch d.Kind {
		case behavior.Join:
			detected[world.BehaviorJoin]++
		case behavior.Leave:
			detected[world.BehaviorLeave]++
		case behavior.Pause:
			detected[world.BehaviorPause]++
		case behavior.Resume:
			detected[world.BehaviorResume]++
		case behavior.Switch:
			detected[world.BehaviorSwitch]++
		}
	}
	for _, kind := range []world.BehaviorKind{
		world.BehaviorJoin, world.BehaviorLeave, world.BehaviorPause,
		world.BehaviorResume, world.BehaviorSwitch,
	} {
		if truth[kind] == 0 {
			continue // not enough churn for this kind in a short run
		}
		got, want := detected[kind], truth[kind]
		if got < want-2 || got > want+2 {
			t.Errorf("%s: detected %d, ground truth %d (truth=%v, detected=%v)",
				kind, got, want, truth, detected)
		}
	}
}

func TestDynamicsAdoptionBreakdown(t *testing.T) {
	w := dynamicsWorld(1500, 43)
	res := Dynamics{World: w, Days: 3}.Run()
	rate := res.AvgAdoptionRate()
	if rate < 0.10 || rate > 0.22 {
		t.Fatalf("avg adoption = %.3f", rate)
	}
	top := res.AvgTopAdoptionRate()
	if top <= rate {
		t.Fatalf("top-bucket adoption %.3f not above overall %.3f", top, rate)
	}
	cf := res.AvgProviderShare(dps.Cloudflare)
	if cf < 0.7 || cf > 0.9 {
		t.Fatalf("cloudflare share = %.3f", cf)
	}
	if inc := res.AvgProviderShare(dps.Incapsula); inc >= cf {
		t.Fatalf("incapsula share %.3f >= cloudflare %.3f", inc, cf)
	}
}

func TestDynamicsPauseWindows(t *testing.T) {
	w := dynamicsWorld(800, 47)
	res := Dynamics{World: w, Days: 25}.Run()
	if len(res.PauseWindows) == 0 {
		t.Fatal("no pause windows detected")
	}
	for _, win := range res.PauseWindows {
		if win.Days() <= 0 {
			t.Fatalf("non-positive pause window: %+v", win)
		}
		if !pauseCapableProvider(win.Provider) {
			t.Fatalf("pause window at non-pause-capable provider: %+v", win)
		}
	}
}

func pauseCapableProvider(key dps.ProviderKey) bool {
	return key == dps.Cloudflare || key == dps.Incapsula
}

func TestDynamicsUnchangedRates(t *testing.T) {
	w := dynamicsWorld(1200, 53)
	res := Dynamics{World: w, Days: 15}.Run()
	jr, un, rate := res.TotalUnchangedRate()
	if jr < 30 {
		t.Fatalf("too few join/resume samples: %d", jr)
	}
	if un == 0 || un > jr {
		t.Fatalf("unchanged = %d of %d", un, jr)
	}
	// Ground truth unchanged ~58.6%; HTML verification is a lower bound
	// (restricted origins, dynamic meta eat some), so allow a wide band
	// below the truth but demand the ordering signal survives.
	if rate < 0.25 || rate > 0.75 {
		t.Fatalf("unchanged rate = %.3f (%d/%d)", rate, un, jr)
	}
}

func TestDynamicsSummaryString(t *testing.T) {
	w := dynamicsWorld(300, 59)
	res := Dynamics{World: w, Days: 4}.Run()
	if s := res.String(); !strings.Contains(s, "dynamics:") {
		t.Fatalf("String() = %q", s)
	}
}

func residualWorld(n int, seed int64) *world.World {
	cfg := world.PaperConfig(n)
	cfg.Seed = seed
	// Boost churn so a few weeks produce leaves and switches.
	cfg.LeaveRate = 0.01
	cfg.SwitchRate = 0.008
	cfg.JoinRate = 0.002
	return world.New(cfg)
}

func TestResidualCampaign(t *testing.T) {
	w := residualWorld(1500, 61)
	res := Residual{World: w, Weeks: 4}.Run()

	if res.NameserverCount == 0 {
		t.Fatal("no cloudflare nameservers discovered")
	}
	if len(res.Cloudflare) != 4 || len(res.Incapsula) != 4 {
		t.Fatalf("weekly reports: cf=%d inc=%d", len(res.Cloudflare), len(res.Incapsula))
	}

	ch, _ := res.TotalHidden()
	cv, _ := res.TotalVerified()
	if ch == 0 {
		t.Fatal("no cloudflare hidden records despite churn")
	}
	if cv > ch {
		t.Fatalf("verified %d > hidden %d", cv, ch)
	}
	// Week 1 scans a fresh world: hidden records accumulate over weeks as
	// churn creates terminated customers.
	firstWeek := len(res.Cloudflare[0].Report.HiddenApexes())
	lastWeek := len(res.Cloudflare[3].Report.HiddenApexes())
	if lastWeek < firstWeek {
		t.Logf("hidden records decreased %d -> %d (purge can cause this)", firstWeek, lastWeek)
	}
}

func TestResidualCloudflareDwarfsIncapsula(t *testing.T) {
	w := residualWorld(2500, 67)
	res := Residual{World: w, Weeks: 3}.Run()
	ch, ih := res.TotalHidden()
	if ch == 0 {
		t.Fatal("no cloudflare hidden records")
	}
	// Table VI shape: Cloudflare's hidden-record count dwarfs Incapsula's
	// (3,504 vs 42 in the paper), mostly a function of market share.
	if ih > ch {
		t.Fatalf("incapsula hidden (%d) exceeds cloudflare (%d)", ih, ch)
	}
}

func TestResidualIncapsulaStartWeek(t *testing.T) {
	w := residualWorld(600, 71)
	res := Residual{World: w, Weeks: 4, IncapsulaStartWeek: 2}.Run()
	// Start-at-week-2 over 4 weeks tracks weeks 2, 3, 4 — the start week
	// itself is included (the old `week >` comparison skipped it).
	if len(res.Incapsula) != 3 {
		t.Fatalf("incapsula weeks = %d, want 3", len(res.Incapsula))
	}
	if len(res.Cloudflare) != 4 {
		t.Fatalf("cloudflare weeks = %d, want 4", len(res.Cloudflare))
	}
}

// TestResidualWeekNumbering pins the week indices of both case studies:
// Cloudflare reports carry weeks 1..Weeks, the delayed Incapsula reports
// carry IncapsulaStartWeek..Weeks — the same numbering, not a rebased
// one — and each exposure tracker saw exactly those weeks. This is the
// Cloudflare/Incapsula week-index handoff ISSUE 3 asks to pin, and it
// also exercises exposure.Tracker.AddWeek's strictly-increasing
// contract for a tracker whose first week is > 1.
func TestResidualWeekNumbering(t *testing.T) {
	w := residualWorld(600, 71)
	res := Residual{World: w, Weeks: 5, IncapsulaStartWeek: 3}.Run()
	for i, wr := range res.Cloudflare {
		if wr.Week != i+1 {
			t.Fatalf("cloudflare report %d has week %d, want %d", i, wr.Week, i+1)
		}
	}
	if len(res.Incapsula) != 3 {
		t.Fatalf("incapsula weeks = %d, want 3", len(res.Incapsula))
	}
	for i, wr := range res.Incapsula {
		if want := i + 3; wr.Week != want {
			t.Fatalf("incapsula report %d has week %d, want %d", i, wr.Week, want)
		}
	}
	if got, _, _ := res.CFExposure.WeeklyCounts(); len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("cloudflare tracker weeks = %v", got)
	}
	if got, _, _ := res.IncExposure.WeeklyCounts(); len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("incapsula tracker weeks = %v", got)
	}
}

func TestResidualSummaryString(t *testing.T) {
	w := residualWorld(300, 73)
	res := Residual{World: w, Weeks: 1}.Run()
	if s := res.String(); !strings.Contains(s, "residual:") {
		t.Fatalf("String() = %q", s)
	}
}

// TestAdoptionGrowsOverCampaign mirrors the paper's +1.17% six-week
// growth: with JOIN outpacing LEAVE, adoption rises over the campaign.
func TestAdoptionGrowsOverCampaign(t *testing.T) {
	cfg := world.PaperConfig(2000)
	cfg.Seed = 991
	// Keep the paper's J>L ratio but scaled up for a short run.
	cfg.JoinRate = 0.004
	cfg.LeaveRate = 0.008 // leave pool is ~5.7x smaller, so joins dominate
	cfg.PauseRate = 0
	cfg.SwitchRate = 0
	res := Dynamics{World: world.New(cfg), Days: 15}.Run()
	if growth := res.AdoptionGrowth(); growth <= 0 {
		t.Fatalf("adoption growth = %+.4f, want positive", growth)
	}
}
