package experiment

import (
	"bytes"
	"testing"

	"rrdps/internal/snapdisk"
	"rrdps/internal/snapstore"
)

// TestDynamicsOnSealMatchesCheckpoint pins the live/checkpoint
// equivalence the lookup service builds on: the blob and view the last
// OnSeal hook hands a live consumer are exactly what the final on-disk
// checkpoint carries — byte-identical cursor, value-identical store.
func TestDynamicsOnSealMatchesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	var views []*snapstore.View
	var blobs [][]byte
	Dynamics{
		World:         dynamicsWorld(200, 8201),
		Days:          5,
		CheckpointDir: dir,
		OnSeal: func(v *snapstore.View, blob []byte) {
			views = append(views, v)
			blobs = append(blobs, blob)
		},
	}.Run()

	if len(views) != 5 {
		t.Fatalf("OnSeal fired %d times, want once per day (5)", len(views))
	}
	d, err := snapdisk.OpenDirReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, campaign, _, ok, err := d.LatestCheckpoint()
	if err != nil || !ok {
		t.Fatalf("LatestCheckpoint: ok=%v err=%v", ok, err)
	}
	last := len(views) - 1
	if !bytes.Equal(blobs[last], campaign) {
		t.Fatalf("last OnSeal blob differs from final checkpoint campaign blob:\n%s\nvs\n%s", blobs[last], campaign)
	}
	loaded, err := snapstore.FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	day, ok := views[last].LatestDay()
	if !ok {
		t.Fatal("last view has no days")
	}
	if lday, _ := loaded.LatestDay(); lday != day {
		t.Fatalf("checkpoint latest day %d != view latest day %d", lday, day)
	}
	want := loaded.SnapshotAt(day)
	got := views[last].SnapshotAt(day)
	if len(got.Records) == 0 || len(got.Records) != len(want.Records) {
		t.Fatalf("view snapshot has %d records, checkpoint %d", len(got.Records), len(want.Records))
	}
	for apex, rec := range want.Records {
		g, ok := got.Records[apex]
		if !ok {
			t.Fatalf("view missing %s", apex)
		}
		if g.ResolveOK != rec.ResolveOK || len(g.Addrs) != len(rec.Addrs) {
			t.Fatalf("view record for %s differs: %+v vs %+v", apex, g, rec)
		}
	}

	// Every hook's blob must decode as a dynamics campaign state whose
	// day index advances with the rounds.
	for i, blob := range blobs {
		cs, err := DecodeCampaignState(blob)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if cs.Kind != CampaignKindDynamics || cs.Dynamics == nil || cs.Residual != nil {
			t.Fatalf("round %d: kind=%q dyn=%v res=%v", i, cs.Kind, cs.Dynamics != nil, cs.Residual != nil)
		}
		if cs.Dynamics.NextDay != i+1 {
			t.Fatalf("round %d: NextDay=%d, want %d", i, cs.Dynamics.NextDay, i+1)
		}
	}
	final, _ := DecodeCampaignState(blobs[last])
	if len(final.Dynamics.Adoptions) == 0 {
		t.Fatal("final state carries no adoptions")
	}
	if !final.Dynamics.HaveTracker {
		t.Fatal("final state carries no tracker")
	}
}

// TestResidualOnSealDecodes checks the residual cursor round-trips
// through DecodeCampaignState with its weekly products intact, without
// requiring a checkpoint directory (a live-only consumer).
func TestResidualOnSealDecodes(t *testing.T) {
	var lastBlob []byte
	rounds := 0
	res := Residual{
		World:      residualWorld(200, 8301),
		Weeks:      2,
		WarmupDays: 7,
		OnSeal: func(v *snapstore.View, blob []byte) {
			rounds++
			lastBlob = blob
			if _, ok := v.LatestDay(); !ok {
				t.Error("OnSeal view has no sealed days")
			}
		},
	}.Run()

	if rounds != 3 { // one warm-up round + two weeks
		t.Fatalf("OnSeal fired %d times, want 3", rounds)
	}
	cs, err := DecodeCampaignState(lastBlob)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Kind != CampaignKindResidual || cs.Residual == nil || cs.Dynamics != nil {
		t.Fatalf("kind=%q res=%v dyn=%v", cs.Kind, cs.Residual != nil, cs.Dynamics != nil)
	}
	if cs.Residual.NextWeek != 3 {
		t.Fatalf("NextWeek=%d, want 3 (campaign done)", cs.Residual.NextWeek)
	}
	if len(cs.Residual.Cloudflare) != len(res.Cloudflare) {
		t.Fatalf("state has %d cloudflare weeks, result %d", len(cs.Residual.Cloudflare), len(res.Cloudflare))
	}
	if cs.WorldDay() == 0 {
		t.Fatal("WorldDay() = 0 after a 3-round campaign")
	}
}

func TestDecodeCampaignStateRejectsGarbage(t *testing.T) {
	if _, err := DecodeCampaignState([]byte("not json")); err == nil {
		t.Fatal("garbage blob decoded")
	}
	if _, err := DecodeCampaignState([]byte(`{"kind":"mystery"}`)); err == nil {
		t.Fatal("unknown kind decoded")
	}
}
