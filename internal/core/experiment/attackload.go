package experiment

import (
	"fmt"
	"math/rand"
	"net/netip"

	"rrdps/internal/attack"
	"rrdps/internal/netsim"
)

// AttackLoad configures a reflection flood that runs alongside the
// residual campaign's weekly scans: a botnet spoofs the scanned
// provider's nameserver addresses as the source of queries to open
// resolvers on the fabric, which amplify junk back onto those
// nameservers (§I's "indirect" DDoS path, the Nawrocki/Kopp
// amplification ecosystem). Combined with world.Config.NSRateLimit the
// junk competes with the scanner for the nameservers' response budget —
// the "does recall survive an attacked fleet" experiment.
//
// The flood runs serially before each scan week's direct scan, so its
// budget consumption is deterministic; the world clock is frozen across
// both, so flood and scan share one rate-limit window. Scenarios pairing
// AttackLoad with a rate limit should pin Workers to 1: which scanner
// queries land in the leftover budget depends on arrival order.
type AttackLoad struct {
	// Bots is the botnet size (source addresses spread over regions).
	Bots int
	// RequestsPerBot is how many spoofed queries each bot sends per
	// attacked scan week.
	RequestsPerBot int
	// Amplification is how many response units one query reflects onto
	// the victim (DNS amplification factors of 30-50x are typical).
	Amplification int
	// Resolvers is how many open reflectors are stood up on the fabric.
	Resolvers int
	// StartWeek is the first scan week (1-based) the flood runs; zero
	// means every scan week.
	StartWeek int
}

// validate panics on nonsensical configuration, mirroring
// world.Config.validate: this is programmer input.
func (a AttackLoad) validate() {
	if a.Bots <= 0 || a.RequestsPerBot <= 0 || a.Amplification <= 0 || a.Resolvers <= 0 {
		panic(fmt.Sprintf("experiment: AttackLoad requires positive Bots, RequestsPerBot, Amplification, and Resolvers (got %+v)", a))
	}
	if a.StartWeek < 0 {
		panic(fmt.Sprintf("experiment: AttackLoad.StartWeek = %d", a.StartWeek))
	}
}

// attackEnv is the flood infrastructure built once at campaign setup:
// the reflectors and the botnet. Building it draws addresses from the
// world's allocator, so a campaign with an AttackLoad is a different
// (but equally deterministic) universe than one without.
type attackEnv struct {
	resolvers []*attack.OpenResolver
	bots      *attack.Botnet
}

// setupAttack stands up the reflectors and botnet. Seeded from the world
// seed so the bot-region assignment is reproducible per world.
func (r Residual) setupAttack(e *residualEnv) {
	a := r.Attack
	if a == nil {
		return
	}
	a.validate()
	w := e.w
	rng := rand.New(rand.NewSource(w.Config().Seed + 31))
	regions := netsim.AllRegions()
	env := &attackEnv{}
	for i := 0; i < a.Resolvers; i++ {
		env.resolvers = append(env.resolvers, attack.NewOpenResolver(
			w.Net, w.Alloc.NextAddr(), regions[rng.Intn(len(regions))], a.Amplification, netsim.PortDNS))
	}
	env.bots = attack.NewBotnet(a.Bots, w.Alloc.NextAddr, rng)
	e.attack = env
}

// floodWeek runs one scan week's reflection flood against the victims
// (the week's discovered nameserver addresses). Each spoofed query makes
// a reflector deliver Amplification junk payloads to the victim's DNS
// port; when the victim endpoint carries a response rate limit, the junk
// drains the budget the scanner is about to compete for.
func (r Residual) floodWeek(e *residualEnv, week int, victims []netip.Addr) {
	a := r.Attack
	if a == nil || len(victims) == 0 {
		return
	}
	start := a.StartWeek
	if start < 1 {
		start = 1
	}
	if week < start {
		return
	}
	query := []byte("ANY? large.zone.example")
	sent := 0
	for i := 0; i < e.attack.bots.Size(); i++ {
		_, region := e.attack.bots.Bot(i)
		for q := 0; q < a.RequestsPerBot; q++ {
			resolver := e.attack.resolvers[(i+q)%len(e.attack.resolvers)]
			victim := victims[sent%len(victims)]
			sent++
			ep := netsim.Endpoint{Addr: resolver.Addr(), Port: netsim.PortDNS}
			// The bot spoofs the victim nameserver as its source; the
			// fabric carries source addresses verbatim (no BCP38 here).
			_, _ = e.w.Net.Send(victim, region, ep, query)
		}
	}
	if r.Obs != nil {
		r.Obs.Counter("attack.spoofed_queries").Add(uint64(sent))
	}
}
