package experiment

// ScenarioInfo records which declarative scenario spec (internal/scenario)
// produced a campaign. Campaigns carry it into every WAL footer and
// checkpoint cursor, so a snapshot directory is self-describing: rrserve
// can answer "what scenario produced this epoch" from the cursor alone,
// and a resumed run can cross-check it is continuing the right campaign.
// The info is pure provenance — it never influences the computation.
type ScenarioInfo struct {
	// Name is the spec's metadata.name.
	Name string `json:"name"`
	// Hash is the SHA-256 hex digest of the spec's canonical form; two
	// specs with the same hash compile to the same campaign.
	Hash string `json:"hash"`
	// Canonical is the normalized v1 spec itself, so a checkpoint
	// directory carries everything needed to re-run its campaign.
	// Omitted from cursors when empty (a flag-driven campaign).
	Canonical []byte `json:"canonical,omitempty"`
}
