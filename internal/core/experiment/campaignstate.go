package experiment

import (
	"encoding/json"
	"fmt"

	"rrdps/internal/core/behavior"
	"rrdps/internal/core/exposure"
	"rrdps/internal/core/status"
	"rrdps/internal/dnsmsg"
)

// Campaign kinds, as recorded in every checkpoint's cursor blob.
const (
	CampaignKindDynamics = cursorKindDynamics
	CampaignKindResidual = cursorKindResidual
)

// DynamicsState is the externally consumable slice of a Dynamics
// campaign cursor: the classification and behaviour products a lookup
// service answers from, without the process internals (resolver health,
// accounting, RNG position) a resuming campaign also needs.
type DynamicsState struct {
	// WorldDay is the world clock as of the cursor; NextDay the next
	// collection-loop index (== collected days so far).
	WorldDay int
	NextDay  int
	// Adoptions is every apex's latest Table III verdict.
	Adoptions map[dnsmsg.Name]status.Adoption
	// HaveTracker guards Tracker: the behaviour FSM exists only after the
	// first collected day.
	HaveTracker bool
	// Tracker carries per-apex detections, closed pause windows, and
	// still-open pauses — the per-domain DPS history.
	Tracker behavior.TrackerState
	// Breakdowns are the per-day Fig. 2 adoption aggregates.
	Breakdowns []AdoptionBreakdown
}

// ResidualState is the Residual campaign counterpart: the §V hidden-
// record products by week.
type ResidualState struct {
	// WorldDay is the world clock as of the cursor; NextWeek the next
	// scan week (Weeks+1 once the campaign finished).
	WorldDay int
	NextWeek int
	// NameserverCount is the discovered NS-rerouting nameserver count
	// (the paper's 391 equivalent).
	NameserverCount int
	// Cloudflare / Incapsula hold the per-week Fig. 8 filtering reports,
	// hidden records included.
	Cloudflare []WeeklyReport
	Incapsula  []WeeklyReport
	// CFExposure / IncExposure are the week-over-week exposure tracker
	// states (Fig. 9 timelines).
	CFExposure  []exposure.WeekState
	IncExposure []exposure.WeekState
}

// CampaignState is the decoded form of a checkpoint's campaign cursor
// blob. Exactly one of Dynamics/Residual is non-nil, matching Kind.
type CampaignState struct {
	Kind     string
	Dynamics *DynamicsState
	Residual *ResidualState
	// Scenario is the provenance of the scenario spec that configured
	// the campaign, nil for flag-driven runs.
	Scenario *ScenarioInfo
}

// WorldDay returns the cursor's world clock regardless of kind.
func (c CampaignState) WorldDay() int {
	switch {
	case c.Dynamics != nil:
		return c.Dynamics.WorldDay
	case c.Residual != nil:
		return c.Residual.WorldDay
	}
	return 0
}

// DecodeCampaignState decodes the campaign blob a snapdisk checkpoint
// (or an OnSeal hook) carries. It accepts both cursor kinds; anything
// else — including a blob from a newer format — is an error, never a
// silently empty state.
func DecodeCampaignState(blob []byte) (CampaignState, error) {
	var kind struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(blob, &kind); err != nil {
		return CampaignState{}, fmt.Errorf("experiment: decode campaign state: %w", err)
	}
	switch kind.Kind {
	case cursorKindDynamics:
		cur, err := decodeDynamicsCursor(blob)
		if err != nil {
			return CampaignState{}, err
		}
		return CampaignState{
			Kind:     cur.Kind,
			Scenario: cur.Scenario,
			Dynamics: &DynamicsState{
				WorldDay:    cur.WorldDay,
				NextDay:     cur.NextDay,
				Adoptions:   cur.Adoptions,
				HaveTracker: cur.HaveTracker,
				Tracker:     cur.Tracker,
				Breakdowns:  cur.Breakdowns,
			},
		}, nil
	case cursorKindResidual:
		cur, err := decodeResidualCursor(blob)
		if err != nil {
			return CampaignState{}, err
		}
		return CampaignState{
			Kind:     cur.Kind,
			Scenario: cur.Scenario,
			Residual: &ResidualState{
				WorldDay:        cur.WorldDay,
				NextWeek:        cur.NextWeek,
				NameserverCount: cur.NameserverCount,
				Cloudflare:      cur.Cloudflare,
				Incapsula:       cur.Incapsula,
				CFExposure:      cur.CFExposure,
				IncExposure:     cur.IncExposure,
			},
		}, nil
	default:
		return CampaignState{}, fmt.Errorf("experiment: unknown campaign cursor kind %q", kind.Kind)
	}
}
