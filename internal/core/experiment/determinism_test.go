package experiment

import (
	"reflect"
	"testing"

	"rrdps/internal/world"
)

// TestDynamicsFullyDeterministic: two campaigns on identically seeded
// worlds produce byte-identical results.
func TestDynamicsFullyDeterministic(t *testing.T) {
	build := func() *world.World {
		cfg := world.PaperConfig(500)
		cfg.Seed = 909
		cfg.JoinRate = 0.01
		cfg.LeaveRate = 0.02
		cfg.PauseRate = 0.03
		cfg.SwitchRate = 0.01
		return world.New(cfg)
	}
	a := Dynamics{World: build(), Days: 8}.Run()
	b := Dynamics{World: build(), Days: 8}.Run()

	if !reflect.DeepEqual(a.Detections, b.Detections) {
		t.Fatal("detections differ between identical campaigns")
	}
	if !reflect.DeepEqual(a.PauseWindows, b.PauseWindows) {
		t.Fatal("pause windows differ")
	}
	if !reflect.DeepEqual(a.CountsByDay, b.CountsByDay) {
		t.Fatal("daily counts differ")
	}
	if !reflect.DeepEqual(a.Unchanged, b.Unchanged) {
		t.Fatal("Table V data differs")
	}
}

// TestResidualFullyDeterministic: the §V campaign is likewise a pure
// function of its configuration.
func TestResidualFullyDeterministic(t *testing.T) {
	build := func() *world.World {
		return world.New(countermeasureConfig(911))
	}
	a := Residual{World: build(), Weeks: 2, WarmupDays: 14}.Run()
	b := Residual{World: build(), Weeks: 2, WarmupDays: 14}.Run()

	aw, ah, av := a.CFExposure.WeeklyCounts()
	bw, bh, bv := b.CFExposure.WeeklyCounts()
	if !reflect.DeepEqual(aw, bw) || !reflect.DeepEqual(ah, bh) || !reflect.DeepEqual(av, bv) {
		t.Fatal("weekly counts differ between identical campaigns")
	}
	if !reflect.DeepEqual(a.CFExposure.ExposedApexes(), b.CFExposure.ExposedApexes()) {
		t.Fatal("exposed apex sets differ")
	}
	for i := range a.Cloudflare {
		if !reflect.DeepEqual(a.Cloudflare[i].Report.Hidden, b.Cloudflare[i].Report.Hidden) {
			t.Fatalf("week %d hidden records differ", i+1)
		}
	}
}

// TestResidualParallelMatchesSerial: the whole §V campaign with eight
// workers on every loop produces the same artifacts as the serial run —
// the end-to-end determinism guarantee the per-package tests check in
// isolation.
func TestResidualParallelMatchesSerial(t *testing.T) {
	build := func() *world.World {
		return world.New(countermeasureConfig(913))
	}
	serial := Residual{World: build(), Weeks: 2, WarmupDays: 14}.Run()
	parallel := Residual{World: build(), Weeks: 2, WarmupDays: 14, Workers: 8}.Run()

	if serial.NameserverCount != parallel.NameserverCount {
		t.Fatalf("nameserver counts differ: serial %d, parallel %d",
			serial.NameserverCount, parallel.NameserverCount)
	}
	sw, sh, sv := serial.CFExposure.WeeklyCounts()
	pw, ph, pv := parallel.CFExposure.WeeklyCounts()
	if !reflect.DeepEqual(sw, pw) || !reflect.DeepEqual(sh, ph) || !reflect.DeepEqual(sv, pv) {
		t.Fatal("CF weekly counts differ between serial and parallel campaigns")
	}
	if !reflect.DeepEqual(serial.CFExposure.ExposedApexes(), parallel.CFExposure.ExposedApexes()) {
		t.Fatal("CF exposed apex sets differ")
	}
	if len(serial.Incapsula) != len(parallel.Incapsula) {
		t.Fatalf("incapsula week counts differ: serial %d, parallel %d",
			len(serial.Incapsula), len(parallel.Incapsula))
	}
	for i := range serial.Cloudflare {
		if !reflect.DeepEqual(serial.Cloudflare[i].Report, parallel.Cloudflare[i].Report) {
			t.Fatalf("CF week %d report differs between serial and parallel", i+1)
		}
	}
	for i := range serial.Incapsula {
		if !reflect.DeepEqual(serial.Incapsula[i].Report, parallel.Incapsula[i].Report) {
			t.Fatalf("incapsula week %d report differs between serial and parallel", i+1)
		}
	}
}

// TestDynamicsParallelMatchesSerial covers the §IV campaign's parallel
// collection path the same way.
func TestDynamicsParallelMatchesSerial(t *testing.T) {
	build := func() *world.World {
		cfg := world.PaperConfig(500)
		cfg.Seed = 909
		cfg.JoinRate = 0.01
		cfg.LeaveRate = 0.02
		cfg.PauseRate = 0.03
		cfg.SwitchRate = 0.01
		return world.New(cfg)
	}
	serial := Dynamics{World: build(), Days: 8}.Run()
	parallel := Dynamics{World: build(), Days: 8, Workers: 8}.Run()

	if !reflect.DeepEqual(serial.Detections, parallel.Detections) {
		t.Fatal("detections differ between serial and parallel campaigns")
	}
	if !reflect.DeepEqual(serial.PauseWindows, parallel.PauseWindows) {
		t.Fatal("pause windows differ")
	}
	if !reflect.DeepEqual(serial.CountsByDay, parallel.CountsByDay) {
		t.Fatal("daily counts differ")
	}
	if !reflect.DeepEqual(serial.Unchanged, parallel.Unchanged) {
		t.Fatal("Table V data differs")
	}
	if !reflect.DeepEqual(serial.Breakdowns, parallel.Breakdowns) {
		t.Fatal("adoption breakdowns differ")
	}
}
