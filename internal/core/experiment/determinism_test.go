package experiment

import (
	"reflect"
	"testing"

	"rrdps/internal/world"
)

// TestDynamicsFullyDeterministic: two campaigns on identically seeded
// worlds produce byte-identical results.
func TestDynamicsFullyDeterministic(t *testing.T) {
	build := func() *world.World {
		cfg := world.PaperConfig(500)
		cfg.Seed = 909
		cfg.JoinRate = 0.01
		cfg.LeaveRate = 0.02
		cfg.PauseRate = 0.03
		cfg.SwitchRate = 0.01
		return world.New(cfg)
	}
	a := Dynamics{World: build(), Days: 8}.Run()
	b := Dynamics{World: build(), Days: 8}.Run()

	if !reflect.DeepEqual(a.Detections, b.Detections) {
		t.Fatal("detections differ between identical campaigns")
	}
	if !reflect.DeepEqual(a.PauseWindows, b.PauseWindows) {
		t.Fatal("pause windows differ")
	}
	if !reflect.DeepEqual(a.CountsByDay, b.CountsByDay) {
		t.Fatal("daily counts differ")
	}
	if !reflect.DeepEqual(a.Unchanged, b.Unchanged) {
		t.Fatal("Table V data differs")
	}
}

// TestResidualFullyDeterministic: the §V campaign is likewise a pure
// function of its configuration.
func TestResidualFullyDeterministic(t *testing.T) {
	build := func() *world.World {
		return world.New(countermeasureConfig(911))
	}
	a := Residual{World: build(), Weeks: 2, WarmupDays: 14}.Run()
	b := Residual{World: build(), Weeks: 2, WarmupDays: 14}.Run()

	aw, ah, av := a.CFExposure.WeeklyCounts()
	bw, bh, bv := b.CFExposure.WeeklyCounts()
	if !reflect.DeepEqual(aw, bw) || !reflect.DeepEqual(ah, bh) || !reflect.DeepEqual(av, bv) {
		t.Fatal("weekly counts differ between identical campaigns")
	}
	if !reflect.DeepEqual(a.CFExposure.ExposedApexes(), b.CFExposure.ExposedApexes()) {
		t.Fatal("exposed apex sets differ")
	}
	for i := range a.Cloudflare {
		if !reflect.DeepEqual(a.Cloudflare[i].Report.Hidden, b.Cloudflare[i].Report.Hidden) {
			t.Fatalf("week %d hidden records differ", i+1)
		}
	}
}
