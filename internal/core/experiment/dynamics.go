// Package experiment orchestrates the paper's two measurement campaigns
// over a simulated world: the six-week usage-dynamics study (§IV) and the
// residual-resolution-in-the-wild study (§V). The cmd/ binaries and the
// benchmark harness drive these runners to regenerate every table and
// figure.
package experiment

import (
	"fmt"
	"math/rand"
	"net/netip"

	"rrdps/internal/alexa"
	"rrdps/internal/core/behavior"
	"rrdps/internal/core/collect"
	"rrdps/internal/core/htmlverify"
	"rrdps/internal/core/match"
	"rrdps/internal/core/status"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/obs"
	"rrdps/internal/snapstore"
	"rrdps/internal/world"
)

// AdoptionBreakdown aggregates one day's classification into the Fig. 2
// numbers.
type AdoptionBreakdown struct {
	Day int
	// ByProvider counts adopters (ON or OFF, shared-IP suspects excluded)
	// per provider.
	ByProvider map[dps.ProviderKey]int
	// Total is the number of adopters.
	Total int
	// Population is the number of classified domains.
	Population int
	// TopAdopters / TopPopulation restrict to the top rank bucket (the
	// paper's top-10k equivalent).
	TopAdopters   int
	TopPopulation int
	// CloudflareNS / CloudflareCNAME split Cloudflare adopters by
	// rerouting (Fig. 6).
	CloudflareNS    int
	CloudflareCNAME int
}

// UnchangedRow is one provider's Table V row.
type UnchangedRow struct {
	Provider    dps.ProviderKey
	JoinResume  int
	IPUnchanged int
}

// DynamicsResult carries everything the §IV experiments report.
type DynamicsResult struct {
	Days int
	// Daily adoption breakdowns (Fig. 2 averages over these).
	Breakdowns []AdoptionBreakdown
	// Detections and pause windows from the behaviour tracker.
	Detections   []behavior.Detection
	PauseWindows []behavior.PauseWindow
	CountsByDay  map[int]map[behavior.Kind]int
	// Unchanged is the Table V data, keyed by provider.
	Unchanged map[dps.ProviderKey]*UnchangedRow
	// Stats is the collector resolver's resilience accounting for the
	// whole campaign.
	Stats dnsresolver.QueryStats
	// Sidelined lists the nameservers still sidelined by health tracking
	// when the campaign ended.
	Sidelined []netip.Addr
}

// AvgAdoptionRate returns the mean daily overall adoption rate.
func (r DynamicsResult) AvgAdoptionRate() float64 {
	if len(r.Breakdowns) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range r.Breakdowns {
		if b.Population > 0 {
			sum += float64(b.Total) / float64(b.Population)
		}
	}
	return sum / float64(len(r.Breakdowns))
}

// AvgTopAdoptionRate returns the mean daily adoption rate in the top rank
// bucket.
func (r DynamicsResult) AvgTopAdoptionRate() float64 {
	if len(r.Breakdowns) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range r.Breakdowns {
		if b.TopPopulation > 0 {
			sum += float64(b.TopAdopters) / float64(b.TopPopulation)
		}
	}
	return sum / float64(len(r.Breakdowns))
}

// AdoptionGrowth returns the change in overall adoption rate from the
// first to the last day — the paper observes +1.17% over its six weeks.
func (r DynamicsResult) AdoptionGrowth() float64 {
	if len(r.Breakdowns) < 2 {
		return 0
	}
	first, last := r.Breakdowns[0], r.Breakdowns[len(r.Breakdowns)-1]
	if first.Population == 0 || last.Population == 0 {
		return 0
	}
	return float64(last.Total)/float64(last.Population) - float64(first.Total)/float64(first.Population)
}

// AvgProviderShare returns provider key's mean share of adopters.
func (r DynamicsResult) AvgProviderShare(key dps.ProviderKey) float64 {
	if len(r.Breakdowns) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range r.Breakdowns {
		if b.Total > 0 {
			sum += float64(b.ByProvider[key]) / float64(b.Total)
		}
	}
	return sum / float64(len(r.Breakdowns))
}

// AvgPerDay returns the mean daily count of a behaviour kind.
func (r DynamicsResult) AvgPerDay(kind behavior.Kind) float64 {
	if r.Days <= 1 {
		return 0
	}
	total := 0
	for _, counts := range r.CountsByDay {
		total += counts[kind]
	}
	// Behaviours are detected from day 1 on (day 0 is the baseline).
	return float64(total) / float64(r.Days-1)
}

// TotalUnchangedRate returns Table V's bottom-line unchanged percentage.
func (r DynamicsResult) TotalUnchangedRate() (joinResume, unchanged int, rate float64) {
	for _, row := range r.Unchanged {
		joinResume += row.JoinResume
		unchanged += row.IPUnchanged
	}
	if joinResume > 0 {
		rate = float64(unchanged) / float64(joinResume)
	}
	return joinResume, unchanged, rate
}

// Dynamics runs the §IV usage-dynamics campaign: days daily snapshots with
// classification, behaviour tracking, and the Table V JOIN/RESUME HTML
// verification.
type Dynamics struct {
	World *world.World
	Days  int
	// Vantage is the collector's region. Defaults to Oregon.
	Vantage netsim.Region
	// Excluded lists extra domains to skip.
	Excluded []dnsmsg.Name
	// Keep, when non-nil, restricts the campaign to the domains it
	// accepts. The shard-parallel driver (internal/shardrun) partitions
	// the apex population by giving each shard's campaign its membership
	// predicate; an unsharded campaign leaves it nil and measures
	// everything.
	Keep func(alexa.Domain) bool
	// TopCut overrides the top rank bucket cutoff: domains with Rank <=
	// TopCut count toward the Fig. 2 top-bucket numbers. Zero derives
	// the cutoff from the campaign's own population (population/100,
	// min 1). A sharded campaign must pass the whole population's
	// cutoff, or each shard would bucket against its shard-local
	// population and the merged breakdown would not match an unsharded
	// run.
	TopCut int
	// KeepMultiCDN disables the automatic exclusion of detected multi-CDN
	// front-end customers (see DetectMultiCDN). The paper excludes them
	// (§IV-B.3); keep them only to demonstrate the SWITCH noise they add.
	KeepMultiCDN bool
	// LongIntervalProb makes some snapshot gaps two days instead of one,
	// modelling the paper's uneven 20-30h experiment intervals. Longer
	// gaps aggregate more behaviours into one diff — the spike
	// synchronization the paper observes in Fig. 3 — and can compress
	// reversed pairs (a PAUSE and RESUME inside one gap cancel out).
	LongIntervalProb float64
	// Rand drives interval jitter; required when LongIntervalProb > 0.
	Rand *rand.Rand
	// Workers sets the daily collection parallelism. Zero or one means
	// serial; snapshots stay value-identical either way because the world
	// only advances between collection passes.
	Workers int
	// Policy overrides the retry policy installed on the collector's
	// resolver. Nil means dnsresolver.DefaultPolicy(); point it at a
	// NoRetryPolicy value to measure the unprotected baseline.
	Policy *dnsresolver.Policy
	// Obs, when non-nil, receives the campaign's metrics and phase spans:
	// stage counters from the collector and verifier, dns.* resilience
	// counters from the resolver, and per-day spans.
	Obs *obs.Registry
	// SnapWindow bounds the streaming pipeline's snapshot retention, in
	// days. Zero keeps the default of 2 — the current day plus the previous
	// day that DiffPairs and the Table V verification look back to — so
	// retained memory stays flat no matter how long the campaign runs.
	// Values below 2 are raised to 2; negative retains every day (useful
	// when the caller wants to replay the campaign afterwards). Ignored by
	// Legacy.
	SnapWindow int
	// Legacy runs the original map-based pipeline that materializes each
	// day as a full collect.Snapshot. It exists so TestStreamingMatchesLegacy
	// can pin the streaming pipeline's outputs against it; new code should
	// leave it false, and the flag goes away once the legacy adapter is
	// retired.
	Legacy bool
	// CheckpointDir, when non-empty, makes the campaign durable: every
	// day is teed into a write-ahead log in the directory, and a full
	// checkpoint (store + campaign cursor) is written every
	// CheckpointEvery world days — see internal/snapdisk. Requires the
	// streaming pipeline (Legacy must be false).
	CheckpointDir string
	// CheckpointEvery is the full-checkpoint cadence in world days.
	// Zero means 7.
	CheckpointEvery int
	// Resume continues the campaign recorded in CheckpointDir instead of
	// starting over. The caller must supply a *fresh* World built from
	// the same config and seed as the interrupted run (the world replays
	// deterministically to the checkpointed day), and the same campaign
	// configuration. The resumed result is value-identical to an
	// uninterrupted run. With no state in CheckpointDir the campaign
	// simply starts from the beginning.
	Resume bool

	// Scenario, when non-nil, records which declarative scenario spec
	// produced this campaign; it rides along into every checkpoint and
	// WAL footer so rrserve can answer "what scenario produced this
	// epoch". It does not influence the computation.
	Scenario *ScenarioInfo

	// StopAfterDays, when positive, stops the campaign after that many
	// collected days and returns the partial result — the test hook that
	// simulates a kill at a day boundary. Exported so the shard-parallel
	// driver's crash/resume suite (internal/shardrun) can kill one
	// shard's campaign while its siblings run to completion.
	StopAfterDays int

	// OnSeal, when non-nil, runs after every sealed collection round with
	// an immutable view of the store's sealed days and the round's
	// campaign-cursor blob — the same blob a checkpoint would carry, so a
	// live consumer (the lookup service) sees exactly what a
	// checkpoint-loaded one would. The hook runs on the campaign
	// goroutine between Seal and the next BeginDay; the view and blob
	// stay valid after it returns. Requires the streaming pipeline.
	OnSeal func(*snapstore.View, []byte)
}

// _multiCDNSubstrings identify multi-CDN front-end aliases in CNAME
// chains; the paper names Cedexis as the canonical example.
var _multiCDNSubstrings = []string{"cedexis"}

// DetectMultiCDN returns the apexes whose CNAME chains run through a
// multi-CDN front-end in the given snapshot.
func DetectMultiCDN(snap collect.Snapshot) []dnsmsg.Name {
	var out []dnsmsg.Name
	for apex, rec := range snap.Records {
		for _, target := range rec.CNAMEs {
			for _, sub := range _multiCDNSubstrings {
				if target.ContainsSubstring(sub) {
					out = append(out, apex)
				}
			}
		}
	}
	return out
}

// DetectMultiCDNStream is DetectMultiCDN over a record stream (a snapstore
// cursor): same substring matching, one record in memory at a time.
func DetectMultiCDNStream(src status.RecordSource) []dnsmsg.Name {
	var out []dnsmsg.Name
	for src.Next() {
		for _, target := range src.Record().CNAMEs {
			for _, sub := range _multiCDNSubstrings {
				if target.ContainsSubstring(sub) {
					out = append(out, src.Apex())
				}
			}
		}
	}
	return out
}

// Run executes the campaign. The world's clock advances Days days.
//
// By default the campaign runs the streaming snapstore pipeline: every day
// is collected straight into a delta-encoded snapstore.Store and consumed
// through a DiffPairs cursor, so retained memory is bounded by SnapWindow
// instead of growing with the campaign. Legacy selects the original
// map-based pipeline; both produce value-identical results, pinned by
// TestStreamingMatchesLegacy.
func (d Dynamics) Run() DynamicsResult {
	if d.World == nil || d.Days <= 0 {
		panic("experiment: Dynamics requires World and positive Days")
	}
	if d.CheckpointDir != "" && d.Legacy {
		panic("experiment: checkpointing requires the streaming pipeline (Legacy must be false)")
	}
	if d.OnSeal != nil && d.Legacy {
		panic("experiment: OnSeal requires the streaming pipeline (Legacy must be false)")
	}
	e := d.setup()
	if d.Legacy {
		return d.runLegacy(e)
	}
	return d.runStreaming(e)
}

// dynamicsEnv is the wiring shared by the legacy and streaming pipelines.
type dynamicsEnv struct {
	w          *world.World
	resolver   *dnsresolver.Resolver
	domains    []alexa.Domain
	collector  *collect.Collector
	classifier *status.Classifier
	verifier   *htmlverify.Verifier
	topCut     int
}

func (d Dynamics) setup() *dynamicsEnv {
	vantage := d.Vantage
	if vantage == 0 {
		vantage = netsim.RegionOregon
	}
	w := d.World
	resolver := w.NewResolver(vantage)
	domains := make([]alexa.Domain, 0, len(w.Sites()))
	for _, s := range w.Sites() {
		dom := s.Domain()
		if d.Keep != nil && !d.Keep(dom) {
			continue
		}
		domains = append(domains, dom)
	}
	collector := collect.New(resolver, domains)
	if d.Workers > 1 {
		collector.SetWorkers(d.Workers)
	}
	policy := dnsresolver.DefaultPolicy()
	if d.Policy != nil {
		policy = *d.Policy
	}
	resolver.SetPolicy(policy)
	matcher := match.New(w.Registry, dps.Profiles())
	verifier := htmlverify.New(w.NewHTTPClient(vantage))
	if d.Obs != nil {
		collector.SetObserver(d.Obs)
		verifier.SetObserver(d.Obs)
		d.Obs.Gauge("campaign.days").Set(int64(d.Days))
		d.Obs.Gauge("campaign.domains").Set(int64(len(domains)))
	}
	topCut := d.TopCut
	if topCut <= 0 {
		topCut = len(domains) / 100
		if topCut < 1 {
			topCut = 1
		}
	}
	return &dynamicsEnv{
		w:          w,
		resolver:   resolver,
		domains:    domains,
		collector:  collector,
		classifier: status.New(matcher),
		verifier:   verifier,
		topCut:     topCut,
	}
}

// advance moves the world to the next snapshot, with the optional long
// (2-day) interval jitter. It returns how many jitter draws it took
// from d.Rand, so a checkpoint can record the draw count and a resumed
// run can burn the same number from a fresh identically-seeded Rand.
func (d Dynamics) advance(w *world.World) int {
	w.AdvanceDay()
	if d.LongIntervalProb <= 0 {
		return 0
	}
	if d.Rand.Float64() < d.LongIntervalProb {
		// A long (2-day) gap before the next snapshot.
		w.AdvanceDay()
	}
	return 1
}

// finish assembles the tracker's and resolver's campaign-end
// accounting. base is the accounting a resumed campaign inherited from
// before the restart (zero otherwise); the fresh resolver's stats add
// on top, reproducing the uninterrupted totals.
func (d Dynamics) finish(res *DynamicsResult, e *dynamicsEnv, tracker *behavior.Tracker, base dnsresolver.QueryStats) {
	res.Detections = tracker.Detections()
	res.PauseWindows = tracker.PauseWindows()
	res.CountsByDay = tracker.CountsByDay()
	res.Stats = base.Add(e.resolver.Stats())
	res.Sidelined = e.resolver.Health().Sidelined()
}

// runLegacy is the original map-based pipeline: each day materializes a
// full collect.Snapshot, and the previous day's map is retained for the
// Table V lookups.
func (d Dynamics) runLegacy(e *dynamicsEnv) DynamicsResult {
	res := DynamicsResult{Days: d.Days, Unchanged: make(map[dps.ProviderKey]*UnchangedRow)}
	var tracker *behavior.Tracker // built after the first snapshot (multi-CDN detection)
	var prevSnap collect.Snapshot

	for day := 0; day < d.Days; day++ {
		daySpan := d.Obs.Tracer().StartSpan("day", fmt.Sprintf("day %d", day))
		daySpan.SetItems(len(e.domains))
		snap := e.collector.Collect(day)
		classified := e.classifier.ClassifySnapshot(snap)

		if tracker == nil {
			excluded := append([]dnsmsg.Name(nil), d.Excluded...)
			if !d.KeepMultiCDN {
				excluded = append(excluded, DetectMultiCDN(snap)...)
			}
			tracker = behavior.NewTracker(excluded)
		}
		res.Breakdowns = append(res.Breakdowns, breakdown(day, snap, classified, e.topCut))

		detections := tracker.Observe(day, validAdoptions(snap, classified))
		// Table V: verify origin-IP hygiene for JOIN and RESUME (§IV-C.3
		// explicitly excludes SWITCH).
		for _, det := range detections {
			if det.Kind != behavior.Join && det.Kind != behavior.Resume {
				continue
			}
			if prevSnap.Records == nil {
				continue // day 0: no previous snapshot yet
			}
			pr := snapstore.Pair{Apex: det.Apex}
			pr.Prev, pr.PrevOK = prevSnap.Records[det.Apex]
			pr.Cur, pr.CurOK = snap.Records[det.Apex]
			d.verifyDetection(&res, e.verifier, pr, det)
		}

		prevSnap = snap
		d.advance(e.w)
		daySpan.End()
	}

	d.finish(&res, e, tracker, dnsresolver.QueryStats{})
	return res
}

// window resolves SnapWindow for the streaming pipeline.
func (d Dynamics) window() int {
	switch {
	case d.SnapWindow < 0:
		return 0 // unbounded: keep every day replayable
	case d.SnapWindow < 2:
		return 2 // minimum: DiffPairs and Table V read one day back
	default:
		return d.SnapWindow
	}
}

// runStreaming is the one-pass snapstore pipeline, expressed as the
// incremental engine driven to the configured horizon: NewEngine absorbs
// the persistence/recovery setup, each loop turn appends exactly one day,
// and a final forced checkpoint seals the campaign. Batch and daemon
// callers therefore share every line of per-day logic — the append≡batch
// equivalence suite leans on that.
func (d Dynamics) runStreaming(e *dynamicsEnv) DynamicsResult {
	en := d.newEngine(e)
	defer en.Close()
	appended := 0
	for en.nextDay < d.Days {
		en.AppendDay()
		appended++
		if d.StopAfterDays > 0 && appended >= d.StopAfterDays && en.nextDay < d.Days {
			return en.res // simulated kill; the partial result is not meaningful
		}
	}
	en.Checkpoint()
	return en.Result()
}

// validAdoptions drops records whose resolution failed — in full OR in
// part — so transient failures cannot read as behaviours (a lost A answer
// would demote ON to NONE and fabricate a LEAVE; a lost NS answer would
// demote OFF to NONE), and skips footnote-6 shared-IP suspects.
func validAdoptions(snap collect.Snapshot, classified map[dnsmsg.Name]status.Adoption) map[dnsmsg.Name]status.Adoption {
	out := make(map[dnsmsg.Name]status.Adoption, len(classified))
	for apex, adoption := range classified {
		rec := snap.Records[apex]
		if !rec.ResolveOK || !rec.NSOK {
			continue
		}
		if adoption.SharedIPSuspect {
			continue
		}
		out[apex] = adoption
	}
	return out
}

func breakdown(day int, snap collect.Snapshot, classified map[dnsmsg.Name]status.Adoption, topCut int) AdoptionBreakdown {
	b := AdoptionBreakdown{Day: day, ByProvider: make(map[dps.ProviderKey]int)}
	for apex, adoption := range classified {
		b.accum(snap.Records[apex], adoption, topCut)
	}
	return b
}

// accum folds one classified record into the Fig. 2 counters. Both
// pipelines share it — every field is an order-independent sum, which is
// what keeps the map-based and streaming breakdowns value-identical.
func (b *AdoptionBreakdown) accum(rec collect.Record, adoption status.Adoption, topCut int) {
	b.Population++
	if rec.Domain.Rank <= topCut {
		b.TopPopulation++
	}
	if adoption.Status == status.StatusNone || adoption.SharedIPSuspect {
		return
	}
	b.Total++
	b.ByProvider[adoption.Provider]++
	if rec.Domain.Rank <= topCut {
		b.TopAdopters++
	}
	if adoption.Provider == dps.Cloudflare {
		switch adoption.Rerouting {
		case dps.ReroutingNS:
			b.CloudflareNS++
		case dps.ReroutingCNAME:
			b.CloudflareCNAME++
		}
	}
}

// verifyDetection implements the §IV-C.3 three-step IP1/IP2 procedure
// over a diff pair: the record versions on either side of the detected
// action, read straight off the snapstore diff stream (streaming
// pipeline) or assembled from the retained snapshot maps (legacy). The
// provider's Table V row is created before the record lookups can bail.
func (d Dynamics) verifyDetection(res *DynamicsResult, verifier *htmlverify.Verifier, pr snapstore.Pair, det behavior.Detection) {
	provider := det.To
	row := res.Unchanged[provider]
	if row == nil {
		row = &UnchangedRow{Provider: provider}
		res.Unchanged[provider] = row
	}

	// IP1: the origin address observed before the action. For JOIN that is
	// the pre-join A record; for RESUME, the OFF-period A record (origin).
	if !pr.PrevOK || len(pr.Prev.Addrs) == 0 {
		return
	}
	ip1 := pr.Prev.Addrs[0]

	// IP2: the addresses answered after the action — DPS edges.
	if !pr.CurOK || len(pr.Cur.Addrs) == 0 {
		return
	}
	ip2 := pr.Cur.Addrs[0]

	row.JoinResume++
	if verifySame(verifier, det.Apex, ip2, ip1) {
		row.IPUnchanged++
	}
}

func verifySame(verifier *htmlverify.Verifier, apex dnsmsg.Name, ip2, ip1 netip.Addr) bool {
	return verifier.Verify(apex.Child("www"), ip2, ip1).Match
}

// String renders a one-line summary for logs.
func (r DynamicsResult) String() string {
	jr, un, rate := r.TotalUnchangedRate()
	return fmt.Sprintf("dynamics: %d days, %d detections, %d pause windows, unchanged %d/%d (%.1f%%)",
		r.Days, len(r.Detections), len(r.PauseWindows), un, jr, rate*100)
}
