package experiment

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"rrdps/internal/core/behavior"
	"rrdps/internal/core/exposure"
	"rrdps/internal/core/filter"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
)

// Merge-law property tests for the campaign-level merge layer:
// breakdowns, Table V rows, per-week NS host sets, and the full
// DynamicsResult / ResidualResult merges the shard driver folds with.
// Inputs are randomized but seed-deterministic. Stats and Sidelined are
// covered by the laws too — they merge (QueryStats.Add, sideline-set
// union) even though sharded-vs-unsharded equality skips them.

func randomBreakdowns(rng *rand.Rand, days int) []AdoptionBreakdown {
	out := make([]AdoptionBreakdown, 0, days)
	for day := 0; day < days; day++ {
		if rng.Intn(4) == 0 {
			continue
		}
		b := AdoptionBreakdown{
			Day:             day,
			Total:           rng.Intn(50),
			Population:      50 + rng.Intn(100),
			TopAdopters:     rng.Intn(5),
			TopPopulation:   rng.Intn(10),
			CloudflareNS:    rng.Intn(30),
			CloudflareCNAME: rng.Intn(10),
		}
		if rng.Intn(5) != 0 {
			b.ByProvider = map[dps.ProviderKey]int{
				dps.Cloudflare: rng.Intn(30),
				dps.Incapsula:  rng.Intn(10),
			}
		}
		out = append(out, b)
	}
	return out
}

func randomUnchanged(rng *rand.Rand) map[dps.ProviderKey]*UnchangedRow {
	out := make(map[dps.ProviderKey]*UnchangedRow)
	for _, key := range []dps.ProviderKey{dps.Cloudflare, dps.Incapsula} {
		if rng.Intn(3) == 0 {
			continue
		}
		out[key] = &UnchangedRow{Provider: key, JoinResume: rng.Intn(40), IPUnchanged: rng.Intn(40)}
	}
	return out
}

func randomWeekHosts(rng *rand.Rand, weeks int) map[int][]dnsmsg.Name {
	if rng.Intn(6) == 0 {
		return nil
	}
	out := make(map[int][]dnsmsg.Name)
	for week := 1; week <= weeks; week++ {
		var hosts []dnsmsg.Name
		for i := 0; i < rng.Intn(6); i++ {
			hosts = append(hosts, dnsmsg.Name(fmt.Sprintf("ns%d.cf.example.", rng.Intn(10))))
		}
		out[week] = unionSortedNames(hosts, nil)
	}
	return out
}

func TestMergeBreakdownsSumsSharedDays(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 100; trial++ {
		a, b := randomBreakdowns(rng, 8), randomBreakdowns(rng, 8)
		merged := mergeBreakdowns(a, b)
		byDay := make(map[int]AdoptionBreakdown)
		for _, x := range merged {
			byDay[x.Day] = x
		}
		for _, src := range [][]AdoptionBreakdown{a, b} {
			for _, x := range src {
				if _, ok := byDay[x.Day]; !ok {
					t.Fatalf("trial %d: day %d lost in merge", trial, x.Day)
				}
			}
		}
		for day, m := range byDay {
			want := 0
			for _, src := range [][]AdoptionBreakdown{a, b} {
				for _, x := range src {
					if x.Day == day {
						want += x.Total
					}
				}
			}
			if m.Total != want {
				t.Fatalf("trial %d day %d: Total = %d, want %d", trial, day, m.Total, want)
			}
		}
		// Day-ascending order is preserved.
		for i := 1; i < len(merged); i++ {
			if merged[i-1].Day >= merged[i].Day {
				t.Fatalf("trial %d: merged breakdowns out of order: %v", trial, merged)
			}
		}
	}
}

func TestMergeBreakdownsLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	for trial := 0; trial < 100; trial++ {
		a, b, c := randomBreakdowns(rng, 6), randomBreakdowns(rng, 6), randomBreakdowns(rng, 6)
		if !reflect.DeepEqual(mergeBreakdowns(a, b), mergeBreakdowns(b, a)) {
			t.Fatalf("trial %d: mergeBreakdowns not commutative", trial)
		}
		left := mergeBreakdowns(mergeBreakdowns(a, b), c)
		right := mergeBreakdowns(a, mergeBreakdowns(b, c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: mergeBreakdowns not associative\nleft:  %v\nright: %v", trial, left, right)
		}
		if got := mergeBreakdowns(a, nil); !reflect.DeepEqual(got, a) {
			t.Fatalf("trial %d: nil is not an identity", trial)
		}
	}
}

func TestMergeUnchangedLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	for trial := 0; trial < 100; trial++ {
		a, b, c := randomUnchanged(rng), randomUnchanged(rng), randomUnchanged(rng)
		if !reflect.DeepEqual(mergeUnchanged(a, b), mergeUnchanged(b, a)) {
			t.Fatalf("trial %d: mergeUnchanged not commutative", trial)
		}
		left := mergeUnchanged(mergeUnchanged(a, b), c)
		right := mergeUnchanged(a, mergeUnchanged(b, c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: mergeUnchanged not associative", trial)
		}
	}
	if mergeUnchanged(nil, nil) != nil {
		t.Fatal("nil·nil must stay nil")
	}
	a := map[dps.ProviderKey]*UnchangedRow{
		dps.Cloudflare: {Provider: dps.Cloudflare, JoinResume: 3, IPUnchanged: 2},
	}
	got := mergeUnchanged(a, a)
	if got[dps.Cloudflare].JoinResume != 6 || got[dps.Cloudflare].IPUnchanged != 4 {
		t.Fatalf("sum merge = %+v", got[dps.Cloudflare])
	}
	if got[dps.Cloudflare] == a[dps.Cloudflare] {
		t.Fatal("merge must build fresh rows, not alias inputs")
	}
}

func TestMergeWeekHostsLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(419))
	for trial := 0; trial < 100; trial++ {
		a, b, c := randomWeekHosts(rng, 4), randomWeekHosts(rng, 4), randomWeekHosts(rng, 4)
		if !reflect.DeepEqual(mergeWeekHosts(a, b), mergeWeekHosts(b, a)) {
			t.Fatalf("trial %d: mergeWeekHosts not commutative", trial)
		}
		left := mergeWeekHosts(mergeWeekHosts(a, b), c)
		right := mergeWeekHosts(a, mergeWeekHosts(b, c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: mergeWeekHosts not associative\nleft:  %v\nright: %v", trial, left, right)
		}
	}
	if mergeWeekHosts(nil, nil) != nil {
		t.Fatal("nil·nil must stay nil")
	}
	// Union with dedup, sorted.
	a := map[int][]dnsmsg.Name{1: {"a.ns.", "c.ns."}}
	b := map[int][]dnsmsg.Name{1: {"b.ns.", "c.ns."}, 2: nil}
	got := mergeWeekHosts(a, b)
	if !reflect.DeepEqual(got[1], []dnsmsg.Name{"a.ns.", "b.ns.", "c.ns."}) {
		t.Fatalf("week 1 union = %v", got[1])
	}
	if got[2] != nil {
		t.Fatalf("week 2 must stay nil, got %v", got[2])
	}
}

// randomDynamicsResult assembles a result from the same randomized
// pieces the per-artifact tests use.
func randomDynamicsResult(rng *rand.Rand) DynamicsResult {
	res := DynamicsResult{
		Days:       5 + rng.Intn(5),
		Breakdowns: randomBreakdowns(rng, 8),
		Unchanged:  randomUnchanged(rng),
	}
	for i := 0; i < rng.Intn(10); i++ {
		res.Detections = append(res.Detections, behavior.Detection{
			Day:  i,
			Apex: dnsmsg.Name(fmt.Sprintf("site-%03d.example.", rng.Intn(100))),
			Kind: behavior.Join,
		})
	}
	return res
}

func TestDynamicsResultMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	for trial := 0; trial < 50; trial++ {
		a, b := randomDynamicsResult(rng), randomDynamicsResult(rng)
		ab, ba := a.Merge(b), b.Merge(a)
		// Detections ties on (Day, Apex, Kind) can order either way, so
		// commutativity is checked on the other artifacts.
		if !reflect.DeepEqual(ab.Breakdowns, ba.Breakdowns) ||
			!reflect.DeepEqual(ab.Unchanged, ba.Unchanged) ||
			ab.Days != ba.Days {
			t.Fatalf("trial %d: DynamicsResult.Merge not commutative", trial)
		}
		if got := a.Merge(DynamicsResult{}); !reflect.DeepEqual(got, a) {
			t.Fatalf("trial %d: zero result is not a right identity\ngot: %+v\na:   %+v", trial, got, a)
		}
		if got := (DynamicsResult{}).Merge(a); !reflect.DeepEqual(got, a) {
			t.Fatalf("trial %d: zero result is not a left identity\ngot: %+v\na:   %+v", trial, got, a)
		}
	}
}

func TestResidualResultMergeRecomputesNameserverCount(t *testing.T) {
	a := ResidualResult{
		Weeks:         2,
		CFExposure:    exposure.NewTracker(),
		IncExposure:   exposure.NewTracker(),
		NSHostsByWeek: map[int][]dnsmsg.Name{1: {"a.ns.", "b.ns."}, 2: {"a.ns."}},
	}
	a.NameserverCount = 2
	b := ResidualResult{
		Weeks:         2,
		CFExposure:    exposure.NewTracker(),
		IncExposure:   exposure.NewTracker(),
		NSHostsByWeek: map[int][]dnsmsg.Name{1: {"c.ns."}, 2: {"b.ns.", "d.ns."}},
	}
	b.NameserverCount = 2
	merged := a.Merge(b)
	// Week 1 union: a,b,c = 3; week 2 union: a,b,d = 3. A max of the
	// per-shard counts would claim 2.
	if merged.NameserverCount != 3 {
		t.Fatalf("NameserverCount = %d, want 3 (union before max)", merged.NameserverCount)
	}
	if !reflect.DeepEqual(merged.NSHostsByWeek[1], []dnsmsg.Name{"a.ns.", "b.ns.", "c.ns."}) {
		t.Fatalf("week 1 = %v", merged.NSHostsByWeek[1])
	}
}

func TestResidualResultMergeWeeklyReports(t *testing.T) {
	mk := func(week, scanned int) WeeklyReport {
		return WeeklyReport{Week: week, Report: filter.Report{Provider: dps.Cloudflare, Scanned: scanned}}
	}
	a := ResidualResult{
		Weeks: 2, CFExposure: exposure.NewTracker(), IncExposure: exposure.NewTracker(),
		Cloudflare: []WeeklyReport{mk(1, 10), mk(2, 12)},
	}
	b := ResidualResult{
		Weeks: 2, CFExposure: exposure.NewTracker(), IncExposure: exposure.NewTracker(),
		Cloudflare: []WeeklyReport{mk(1, 5), mk(2, 7)},
	}
	merged := a.Merge(b)
	if len(merged.Cloudflare) != 2 {
		t.Fatalf("weeks = %d, want 2", len(merged.Cloudflare))
	}
	if merged.Cloudflare[0].Report.Scanned != 15 || merged.Cloudflare[1].Report.Scanned != 19 {
		t.Fatalf("scanned = %d, %d; want 15, 19",
			merged.Cloudflare[0].Report.Scanned, merged.Cloudflare[1].Report.Scanned)
	}
}
