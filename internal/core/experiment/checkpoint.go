package experiment

import (
	"encoding/json"
	"fmt"

	"rrdps/internal/core/behavior"
	"rrdps/internal/core/collect"
	"rrdps/internal/core/exposure"
	"rrdps/internal/core/rrscan"
	"rrdps/internal/core/status"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/obs"
	"rrdps/internal/snapdisk"
	"rrdps/internal/snapstore"
)

// Campaign durability (see internal/snapdisk for the on-disk formats).
//
// A checkpointing campaign writes two things: a WAL day group per
// collection round (the round's records plus a footer holding the
// campaign cursor as of that round's end), and a full checkpoint —
// store state plus the same cursor — every CheckpointEvery world days.
// The invariant is that the durable state always equals
//
//	last full checkpoint + the sealed WAL day groups after it,
//
// so resume is: load the newest valid checkpoint, replay the sealed WAL
// groups on top, adopt the last footer's cursor, rebuild the world to
// the cursor's day (the world is derived from config + seed, so
// advancing a fresh world is exact replay), and continue the loop. A
// crash mid-round leaves an unsealed WAL tail; replay drops it and the
// round is re-collected live, which is value-identical because the
// world is quiescent within a round and the resolver cache is purged at
// every pass start.
//
// The cursor carries cumulative QueryStats with SidelineEvents zeroed:
// sideline events live in the health trackers, whose restored event
// counters flow back in through the fresh clients' Stats() — adding the
// base and the post-resume stats then reproduces the uninterrupted
// run's totals exactly.

// defaultCheckpointEvery is the full-checkpoint cadence, in world days,
// when CheckpointEvery is left zero.
const defaultCheckpointEvery = 7

// campaignPersist bundles a campaign's checkpoint directory and WAL.
type campaignPersist struct {
	dir   *snapdisk.Dir
	wal   *snapdisk.WAL
	every int
	// lastCkpt is the world day of the newest full checkpoint, -1 when
	// none exists yet.
	lastCkpt int
}

func openCampaignPersist(dirPath string, every int, resume bool) (*campaignPersist, error) {
	if every <= 0 {
		every = defaultCheckpointEvery
	}
	dir, err := snapdisk.OpenDir(dirPath)
	if err != nil {
		return nil, err
	}
	if !resume {
		// A fresh campaign owns the directory; stale state from an
		// earlier run must not leak into this one's recovery.
		if err := dir.Clear(); err != nil {
			return nil, err
		}
	}
	return &campaignPersist{dir: dir, every: every, lastCkpt: -1}, nil
}

// recovered is what resume found on disk.
type recovered struct {
	store *snapstore.Store
	blob  []byte // campaign cursor: the checkpoint's, or the last sealed WAL footer's
	ok    bool
}

// recoverState loads checkpoint + sealed WAL days. window is the
// campaign's retention bound, applied when recovery starts from an
// empty store (a crash before the first full checkpoint).
func (p *campaignPersist) recoverState(window int) (recovered, error) {
	st, blob, _, ok, err := p.dir.LatestCheckpoint()
	if err != nil {
		return recovered{}, err
	}
	var store *snapstore.Store
	if ok {
		if blob == nil {
			return recovered{}, fmt.Errorf("experiment: checkpoint carries no campaign state")
		}
		store, err = snapstore.FromState(st)
		if err != nil {
			return recovered{}, err
		}
		store.SetWindow(window)
	} else {
		store = snapstore.New()
		store.SetWindow(window)
	}
	days, _, err := snapdisk.ReplayWAL(p.dir.WALPath())
	if err != nil {
		return recovered{}, err
	}
	for _, wd := range days {
		if last, has := store.LatestDay(); has && wd.Day <= last {
			continue // already folded into the checkpoint
		}
		dw := store.BeginDay(wd.Day)
		for _, rec := range wd.Records {
			dw.Put(rec)
		}
		dw.Seal()
		blob = wd.Footer
		ok = true
	}
	return recovered{store: store, blob: blob, ok: ok}, nil
}

// openWAL opens the campaign WAL for appending. Call after recovery and
// after the post-recovery checkpointNow (or after Clear): appending to a
// torn tail would bury sealed groups behind garbage, so the WAL is
// truncated first — and truncating before the recovered state has been
// re-checkpointed would durably discard the sealed groups it replayed.
func (p *campaignPersist) openWAL() error {
	if err := p.truncateWAL(); err != nil {
		return err
	}
	wal, err := snapdisk.OpenWAL(p.dir.WALPath())
	if err != nil {
		return err
	}
	p.wal = wal
	return nil
}

func (p *campaignPersist) truncateWAL() error {
	w, err := snapdisk.OpenWAL(p.dir.WALPath())
	if err != nil {
		return err
	}
	if err := w.Reset(); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// sealRound seals the round's WAL group with the cursor footer, then
// writes a full checkpoint (and truncates the WAL) when the cadence is
// due or force is set.
func (p *campaignPersist) sealRound(worldDay int, store *snapstore.Store, footer []byte, force bool) error {
	if err := p.wal.SealDay(footer); err != nil {
		return err
	}
	if !force && p.lastCkpt >= 0 && worldDay-p.lastCkpt < p.every {
		return nil
	}
	if err := p.dir.WriteCheckpoint(worldDay, store.ExportState(), footer); err != nil {
		return err
	}
	p.lastCkpt = worldDay
	return p.wal.Reset()
}

// checkpointNow writes a full checkpoint outside the seal path — the
// fresh post-recovery checkpoint that re-establishes the invariant
// before the campaign continues. It runs BEFORE openWAL truncates the
// WAL: the replayed sealed groups must be durable in the new checkpoint
// before the only other copy of them is discarded (a crash in between
// just resumes from the new checkpoint, skipping the stale WAL groups).
func (p *campaignPersist) checkpointNow(worldDay int, store *snapstore.Store, footer []byte) error {
	if err := p.dir.WriteCheckpoint(worldDay, store.ExportState(), footer); err != nil {
		return err
	}
	p.lastCkpt = worldDay
	return nil
}

func (p *campaignPersist) close() {
	if p.wal != nil {
		p.wal.Close()
	}
}

// tee returns a Put that feeds both the store's DayWriter and the WAL.
func (p *campaignPersist) tee(put func(collect.Record)) func(collect.Record) {
	return func(rec collect.Record) {
		put(rec)
		if err := p.wal.Put(rec); err != nil {
			panic(fmt.Sprintf("experiment: wal put: %v", err))
		}
	}
}

func (p *campaignPersist) beginDay(day int) {
	if err := p.wal.BeginDay(day); err != nil {
		panic(fmt.Sprintf("experiment: wal begin day %d: %v", day, err))
	}
}

// dynamicsCursor is the Dynamics campaign state a footer/checkpoint
// carries beyond the store: where the loop is, everything the result
// has accumulated, and the process state (FSM, caches, health,
// accounting) the next round's behaviour depends on.
type dynamicsCursor struct {
	Kind     string `json:"kind"`
	NextDay  int    `json:"next_day"`
	WorldDay int    `json:"world_day"`
	// RandDraws counts long-interval jitter draws so far; resume burns
	// as many from a fresh identically-seeded Rand.
	RandDraws   int                               `json:"rand_draws"`
	HaveTracker bool                              `json:"have_tracker"`
	Tracker     behavior.TrackerState             `json:"tracker"`
	Adoptions   map[dnsmsg.Name]status.Adoption   `json:"adoptions"`
	Breakdowns  []AdoptionBreakdown               `json:"breakdowns"`
	Unchanged   map[dps.ProviderKey]*UnchangedRow `json:"unchanged"`
	BaseStats   dnsresolver.QueryStats            `json:"base_stats"`
	Health      dnsresolver.HealthState           `json:"health"`
	Obs         obs.Snapshot                      `json:"obs"`
	// Net carries the fabric's per-endpoint accounting (Fig. 7); the
	// checkpointed rounds' queries never recur on resume, so the
	// counters must travel with the cursor.
	Net netsim.CountersState `json:"net"`
	// Scenario is the provenance of the scenario spec that configured
	// the campaign, nil for flag-driven runs.
	Scenario *ScenarioInfo `json:"scenario,omitempty"`
}

// residualCursor is the Residual campaign's counterpart.
type residualCursor struct {
	Kind            string                  `json:"kind"`
	WarmupRemaining int                     `json:"warmup_remaining"`
	NextWeek        int                     `json:"next_week"`
	WorldDay        int                     `json:"world_day"`
	NameserverCount int                     `json:"nameserver_count"`
	NSHostsByWeek   map[int][]dnsmsg.Name   `json:"ns_hosts_by_week,omitempty"`
	Cloudflare      []WeeklyReport          `json:"cloudflare"`
	Incapsula       []WeeklyReport          `json:"incapsula"`
	CFExposure      []exposure.WeekState    `json:"cf_exposure"`
	IncExposure     []exposure.WeekState    `json:"inc_exposure"`
	CNAMELib        []rrscan.CNAMETargets   `json:"cname_lib"`
	Scanner         rrscan.ScannerState     `json:"scanner"`
	Health          dnsresolver.HealthState `json:"health"`
	BaseStats       dnsresolver.QueryStats  `json:"base_stats"`
	Obs             obs.Snapshot            `json:"obs"`
	Net             netsim.CountersState    `json:"net"`
	Scenario        *ScenarioInfo           `json:"scenario,omitempty"`
}

const (
	cursorKindDynamics = "dynamics"
	cursorKindResidual = "residual"
)

func encodeCursor(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("experiment: encode cursor: %v", err))
	}
	return b
}

func decodeDynamicsCursor(b []byte) (dynamicsCursor, error) {
	var cur dynamicsCursor
	if err := json.Unmarshal(b, &cur); err != nil {
		return cur, fmt.Errorf("experiment: decode dynamics cursor: %w", err)
	}
	if cur.Kind != cursorKindDynamics {
		return cur, fmt.Errorf("experiment: cursor kind %q, want %q", cur.Kind, cursorKindDynamics)
	}
	return cur, nil
}

func decodeResidualCursor(b []byte) (residualCursor, error) {
	var cur residualCursor
	if err := json.Unmarshal(b, &cur); err != nil {
		return cur, fmt.Errorf("experiment: decode residual cursor: %w", err)
	}
	if cur.Kind != cursorKindResidual {
		return cur, fmt.Errorf("experiment: cursor kind %q, want %q", cur.Kind, cursorKindResidual)
	}
	return cur, nil
}

// exportCursor captures the Dynamics campaign state after a completed
// day (nextDay is the next loop index to run). baseStats is the
// accounting this process inherited from the cursor it resumed from
// (zero on a fresh campaign); folding it in keeps the recorded
// BaseStats cumulative across any number of crash/resume cycles.
func (d Dynamics) exportCursor(nextDay, randDraws int, e *dynamicsEnv, tracker *behavior.Tracker, adoptions map[dnsmsg.Name]status.Adoption, res *DynamicsResult, baseStats dnsresolver.QueryStats) dynamicsCursor {
	base := baseStats.Add(e.resolver.Stats())
	base.SidelineEvents = 0 // carried by the restored health tracker
	cur := dynamicsCursor{
		Kind:       cursorKindDynamics,
		NextDay:    nextDay,
		WorldDay:   e.w.Day(),
		RandDraws:  randDraws,
		Adoptions:  adoptions,
		Breakdowns: res.Breakdowns,
		Unchanged:  res.Unchanged,
		BaseStats:  base,
		Health:     e.resolver.Health().ExportState(),
		Obs:        d.Obs.Snapshot(),
		Net:        e.w.Net.ExportCounters(),
		Scenario:   d.Scenario,
	}
	if tracker != nil {
		cur.HaveTracker = true
		cur.Tracker = tracker.ExportState()
	}
	return cur
}

// exportCursor captures the Residual campaign state after a completed
// round. warmupRemaining is the warm-up still owed; nextWeek is the
// next week to run (Weeks+1 when the campaign is done). baseStats is
// the accounting inherited from the cursor this process resumed from
// (zero on a fresh campaign), kept cumulative across restarts.
func (r Residual) exportCursor(warmupRemaining, nextWeek int, e *residualEnv, res *ResidualResult, baseStats dnsresolver.QueryStats) residualCursor {
	base := baseStats.Add(e.resolver.Stats().Add(e.scanner.Stats()))
	base.SidelineEvents = 0 // carried by the restored health trackers
	return residualCursor{
		Kind:            cursorKindResidual,
		WarmupRemaining: warmupRemaining,
		NextWeek:        nextWeek,
		WorldDay:        e.w.Day(),
		NameserverCount: res.NameserverCount,
		NSHostsByWeek:   res.NSHostsByWeek,
		Cloudflare:      res.Cloudflare,
		Incapsula:       res.Incapsula,
		CFExposure:      res.CFExposure.ExportState(),
		IncExposure:     res.IncExposure.ExportState(),
		CNAMELib:        e.cnameLib.ExportState(),
		Scanner:         e.scanner.ExportState(),
		Health:          e.resolver.Health().ExportState(),
		BaseStats:       base,
		Obs:             r.Obs.Snapshot(),
		Net:             e.w.Net.ExportCounters(),
		Scenario:        r.Scenario,
	}
}

// advanceWorldTo replays a fresh world forward to the cursor's day. The
// world is a pure function of its config and seed, so this reproduces
// the interrupted run's world state exactly.
func advanceWorldTo(w interface {
	Day() int
	AdvanceDays(int)
}, worldDay int) {
	if worldDay < w.Day() {
		panic(fmt.Sprintf("experiment: resume world day %d behind current day %d — resume needs a fresh world built from the same config", worldDay, w.Day()))
	}
	w.AdvanceDays(worldDay - w.Day())
}
