package experiment

import (
	"sort"

	"rrdps/internal/core/behavior"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
)

// Shard-merge layer. The shard-parallel driver (internal/shardrun) runs
// each population shard as an independent campaign and recombines the
// per-shard results with the Merge methods below. Every scientific
// artifact merges exactly — Merge(shard results) ≡ unsharded run,
// pinned by the shardrun keystone suite — because each is either an
// order-independent sum over per-apex contributions (breakdowns,
// Table V rows, counts) or an ordered sequence whose canonical order a
// k-way merge reproduces (detections, pause windows, weekly reports,
// exposure sets). The two exceptions are Stats and Sidelined: shared
// infrastructure queries (zone delegation probes, cache warming) are
// issued once per shard instead of once per campaign, so the resilience
// accounting legitimately differs from an unsharded run's. They still
// merge — by QueryStats.Add and sideline-set union — but equality
// checks must skip them, the same latitude the serial≡parallel suites
// allow.
//
// All merges are commutative and associative over disjoint shard
// populations, with the zero result as the identity element (pinned by
// the merge-law property tests).

// Merge combines two DynamicsResult values from disjoint shards of the
// same campaign.
func (r DynamicsResult) Merge(o DynamicsResult) DynamicsResult {
	return DynamicsResult{
		Days:         maxInt(r.Days, o.Days),
		Breakdowns:   mergeBreakdowns(r.Breakdowns, o.Breakdowns),
		Detections:   behavior.MergeDetections(r.Detections, o.Detections),
		PauseWindows: behavior.MergePauseWindows(r.PauseWindows, o.PauseWindows),
		CountsByDay:  behavior.MergeCountsByDay(r.CountsByDay, o.CountsByDay),
		Unchanged:    mergeUnchanged(r.Unchanged, o.Unchanged),
		Stats:        r.Stats.Add(o.Stats),
		Sidelined:    mergeSidelined(r.Sidelined, o.Sidelined),
	}
}

// Merge combines two ResidualResult values from disjoint shards of the
// same campaign.
func (r ResidualResult) Merge(o ResidualResult) ResidualResult {
	out := ResidualResult{
		Weeks:         maxInt(r.Weeks, o.Weeks),
		Cloudflare:    mergeWeeklyReports(r.Cloudflare, o.Cloudflare),
		Incapsula:     mergeWeeklyReports(r.Incapsula, o.Incapsula),
		CFExposure:    r.CFExposure.Merge(o.CFExposure),
		IncExposure:   r.IncExposure.Merge(o.IncExposure),
		NSHostsByWeek: mergeWeekHosts(r.NSHostsByWeek, o.NSHostsByWeek),
		Stats:         r.Stats.Add(o.Stats),
		Sidelined:     mergeSidelined(r.Sidelined, o.Sidelined),
	}
	// NameserverCount is the max over weeks of the merged per-week sets;
	// taking max(r.Count, o.Count) instead would undercount, since no
	// single shard sees the whole week's set.
	for _, hosts := range out.NSHostsByWeek {
		if len(hosts) > out.NameserverCount {
			out.NameserverCount = len(hosts)
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// mergeBreakdowns merges two day-ascending breakdown lists, summing the
// entries that share a Day (shards of one campaign always do) and
// keeping singleton days as-is.
func mergeBreakdowns(a, b []AdoptionBreakdown) []AdoptionBreakdown {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]AdoptionBreakdown, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Day < b[j].Day:
			out = append(out, cloneBreakdown(a[i]))
			i++
		case b[j].Day < a[i].Day:
			out = append(out, cloneBreakdown(b[j]))
			j++
		default:
			out = append(out, addBreakdowns(a[i], b[j]))
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		out = append(out, cloneBreakdown(a[i]))
	}
	for ; j < len(b); j++ {
		out = append(out, cloneBreakdown(b[j]))
	}
	return out
}

func cloneBreakdown(b AdoptionBreakdown) AdoptionBreakdown {
	out := b
	if b.ByProvider != nil {
		out.ByProvider = make(map[dps.ProviderKey]int, len(b.ByProvider))
		for k, v := range b.ByProvider {
			out.ByProvider[k] = v
		}
	}
	return out
}

func addBreakdowns(a, b AdoptionBreakdown) AdoptionBreakdown {
	out := cloneBreakdown(a)
	out.Total += b.Total
	out.Population += b.Population
	out.TopAdopters += b.TopAdopters
	out.TopPopulation += b.TopPopulation
	out.CloudflareNS += b.CloudflareNS
	out.CloudflareCNAME += b.CloudflareCNAME
	if b.ByProvider != nil && out.ByProvider == nil {
		out.ByProvider = make(map[dps.ProviderKey]int, len(b.ByProvider))
	}
	for k, v := range b.ByProvider {
		out.ByProvider[k] += v
	}
	return out
}

// mergeUnchanged sums two Table V maps per provider.
func mergeUnchanged(a, b map[dps.ProviderKey]*UnchangedRow) map[dps.ProviderKey]*UnchangedRow {
	if a == nil && b == nil {
		return nil
	}
	out := make(map[dps.ProviderKey]*UnchangedRow, len(a)+len(b))
	for _, src := range []map[dps.ProviderKey]*UnchangedRow{a, b} {
		for key, row := range src {
			dst := out[key]
			if dst == nil {
				dst = &UnchangedRow{Provider: row.Provider}
				out[key] = dst
			}
			dst.JoinResume += row.JoinResume
			dst.IPUnchanged += row.IPUnchanged
		}
	}
	return out
}

// mergeWeeklyReports merges two week-ascending report lists, folding
// entries that share a Week through filter's Report.Merge.
func mergeWeeklyReports(a, b []WeeklyReport) []WeeklyReport {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]WeeklyReport, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Week < b[j].Week:
			out = append(out, a[i])
			i++
		case b[j].Week < a[i].Week:
			out = append(out, b[j])
			j++
		default:
			out = append(out, WeeklyReport{Week: a[i].Week, Report: a[i].Report.Merge(b[j].Report)})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// mergeWeekHosts unions two per-week NS host maps, keeping each week's
// list sorted and duplicate-free.
func mergeWeekHosts(a, b map[int][]dnsmsg.Name) map[int][]dnsmsg.Name {
	if a == nil && b == nil {
		return nil
	}
	out := make(map[int][]dnsmsg.Name, len(a)+len(b))
	for week, hosts := range a {
		out[week] = append([]dnsmsg.Name(nil), hosts...)
	}
	for week, hosts := range b {
		if existing, ok := out[week]; ok {
			out[week] = unionSortedNames(existing, hosts)
		} else {
			out[week] = append([]dnsmsg.Name(nil), hosts...)
		}
	}
	return out
}

func unionSortedNames(a, b []dnsmsg.Name) []dnsmsg.Name {
	seen := make(map[dnsmsg.Name]bool, len(a)+len(b))
	out := make([]dnsmsg.Name, 0, len(a)+len(b))
	for _, list := range [][]dnsmsg.Name{a, b} {
		for _, n := range list {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) == 0 {
		return nil
	}
	return out
}
