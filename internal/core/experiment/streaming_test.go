package experiment

import (
	"math/rand"
	"reflect"
	"testing"

	"rrdps/internal/world"
)

// diffResults compares two campaign results field by field so a mismatch
// names the diverging output instead of dumping two whole structs. skip
// names fields excluded from the comparison: with Workers > 1 the
// resolver's Stats depend on goroutine interleaving over the shared cache
// (the same latitude the serial≡parallel determinism tests allow), so
// parallel sub-tests skip "Stats" and serial sub-tests pin everything.
func diffResults(t *testing.T, streaming, legacy any, skip ...string) {
	t.Helper()
	skipped := make(map[string]bool, len(skip))
	for _, name := range skip {
		skipped[name] = true
	}
	sv, lv := reflect.ValueOf(streaming), reflect.ValueOf(legacy)
	if sv.Type() != lv.Type() {
		t.Fatalf("type mismatch: %v vs %v", sv.Type(), lv.Type())
	}
	for i := 0; i < sv.NumField(); i++ {
		name := sv.Type().Field(i).Name
		if skipped[name] {
			continue
		}
		if !reflect.DeepEqual(sv.Field(i).Interface(), lv.Field(i).Interface()) {
			t.Errorf("%s differs:\nstreaming: %+v\nlegacy:    %+v",
				name, sv.Field(i).Interface(), lv.Field(i).Interface())
		}
	}
}

// TestStreamingMatchesLegacy pins the tentpole guarantee: the streaming
// snapstore pipeline produces value-identical campaign outputs to the
// legacy map-based pipeline on the same seeded world — every breakdown,
// detection, pause window, Table V row, and even the resolver's resilience
// accounting (the two pipelines must issue the same queries in the same
// order).
func TestStreamingMatchesLegacy(t *testing.T) {
	t.Run("dynamics-42-days", func(t *testing.T) {
		legacy := Dynamics{World: dynamicsWorld(400, 4242), Days: 42, Legacy: true}.Run()
		streaming := Dynamics{World: dynamicsWorld(400, 4242), Days: 42}.Run()
		diffResults(t, streaming, legacy)
	})

	t.Run("dynamics-long-intervals-parallel", func(t *testing.T) {
		run := func(legacy bool) DynamicsResult {
			return Dynamics{
				World:            dynamicsWorld(300, 777),
				Days:             20,
				Workers:          4,
				LongIntervalProb: 0.3,
				Rand:             rand.New(rand.NewSource(7)),
				Legacy:           legacy,
			}.Run()
		}
		diffResults(t, run(false), run(true), "Stats")
	})

	t.Run("dynamics-bounded-vs-unbounded-window", func(t *testing.T) {
		// The retention window must not change results: evicted days are
		// never read back.
		bounded := Dynamics{World: dynamicsWorld(300, 99), Days: 10}.Run()
		unbounded := Dynamics{World: dynamicsWorld(300, 99), Days: 10, SnapWindow: -1}.Run()
		diffResults(t, bounded, unbounded)
	})

	t.Run("residual-6-weeks", func(t *testing.T) {
		run := func(legacy bool) ResidualResult {
			return Residual{
				World:              residualWorld(400, 4242),
				Weeks:              6,
				WarmupDays:         21,
				IncapsulaStartWeek: 4,
				Legacy:             legacy,
			}.Run()
		}
		diffResults(t, run(false), run(true))
	})

	t.Run("residual-parallel", func(t *testing.T) {
		run := func(legacy bool) ResidualResult {
			return Residual{
				World:      residualWorld(300, 77),
				Weeks:      3,
				WarmupDays: 14,
				Workers:    4,
				Legacy:     legacy,
			}.Run()
		}
		diffResults(t, run(false), run(true), "Stats")
	})
}

// TestStreamingWorldConsistency pins that the streaming pipeline still
// advances the world identically: the ground-truth event stream after a
// streaming run matches the one after a legacy run.
func TestStreamingWorldConsistency(t *testing.T) {
	wLegacy, wStreaming := dynamicsWorld(200, 5150), dynamicsWorld(200, 5150)
	Dynamics{World: wLegacy, Days: 8, Legacy: true}.Run()
	Dynamics{World: wStreaming, Days: 8}.Run()
	if !reflect.DeepEqual(worldEvents(wLegacy), worldEvents(wStreaming)) {
		t.Fatal("world event streams diverged between pipelines")
	}
}

func worldEvents(w *world.World) []world.Event {
	return append([]world.Event(nil), w.Events()...)
}
