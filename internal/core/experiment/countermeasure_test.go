package experiment

import (
	"testing"
	"time"

	"rrdps/internal/world"
)

// countermeasureConfig builds matching worlds except for the mitigation
// under test.
func countermeasureConfig(seed int64) world.Config {
	cfg := world.PaperConfig(1500)
	cfg.Seed = seed
	cfg.LeaveRate *= 12
	cfg.SwitchRate *= 12
	cfg.JoinRate *= 12
	cfg.OriginRestrictedRate = 0
	cfg.DynamicMetaRate = 0
	return cfg
}

// TestProviderAuditEliminatesResidualResolution checks §VI-B.1: a provider
// that audits terminated customers against public resolution stops leaking
// moved origins.
func TestProviderAuditEliminatesResidualResolution(t *testing.T) {
	base := Residual{World: world.New(countermeasureConfig(301)), Weeks: 3, WarmupDays: 21}.Run()
	baseHidden, _ := base.TotalHidden()
	if baseHidden == 0 {
		t.Fatal("baseline produced no hidden records; test cannot discriminate")
	}

	audited := Residual{
		World: world.New(countermeasureConfig(301)), Weeks: 3, WarmupDays: 21,
		ProviderAudit: true,
	}.Run()
	auditHidden, _ := audited.TotalHidden()
	auditVerified, _ := audited.TotalVerified()

	// The audit purges customers whose public A diverged (movers). What
	// can remain hidden are records that diverge only between audit and
	// scan within the same week.
	if auditHidden >= baseHidden {
		t.Fatalf("audit did not reduce hidden records: %d -> %d", baseHidden, auditHidden)
	}
	if auditVerified > baseHidden/4 {
		t.Fatalf("audit left %d verified exposures (baseline hidden %d)", auditVerified, baseHidden)
	}
}

// TestCustomerDecoyKillsVerification checks §VI-B.2: leavers planting fake
// origin records leave only dead decoys behind.
func TestCustomerDecoyKillsVerification(t *testing.T) {
	baseCfg := countermeasureConfig(303)
	base := Residual{World: world.New(baseCfg), Weeks: 3, WarmupDays: 21}.Run()
	baseVerified, _ := base.TotalVerified()
	if baseVerified == 0 {
		t.Fatal("baseline produced no verified origins; test cannot discriminate")
	}

	decoyCfg := countermeasureConfig(303)
	decoyCfg.DecoyOnLeaveRate = 1.0
	decoyed := Residual{World: world.New(decoyCfg), Weeks: 3, WarmupDays: 21}.Run()
	decoyVerified, _ := decoyed.TotalVerified()
	decoyHidden, _ := decoyed.TotalHidden()

	if decoyVerified != 0 {
		t.Fatalf("decoys did not kill verification: %d verified (hidden %d)", decoyVerified, decoyHidden)
	}
	// Hidden records still exist — the provider answers the decoy — but
	// they are harmless.
	if decoyHidden == 0 {
		t.Log("no hidden records at all under decoys (also acceptable)")
	}
}

// TestPurgeDelayBoundsExposure: shorter purge delays shrink the exposed
// population (the §V-A.3 observation that free-plan records vanish at the
// fourth week, inverted as a countermeasure knob).
func TestPurgeDelayBoundsExposure(t *testing.T) {
	slowCfg := countermeasureConfig(307)
	slow := Residual{World: world.New(slowCfg), Weeks: 3, WarmupDays: 28}.Run()
	slowHidden, _ := slow.TotalHidden()

	fastCfg := countermeasureConfig(307)
	fastCfg.PurgeDelayFree = 3 * 24 * time.Hour
	fastCfg.PurgeDelayPaid = 7 * 24 * time.Hour
	fast := Residual{World: world.New(fastCfg), Weeks: 3, WarmupDays: 28}.Run()
	fastHidden, _ := fast.TotalHidden()

	if slowHidden == 0 {
		t.Fatal("baseline produced no hidden records")
	}
	if fastHidden >= slowHidden {
		t.Fatalf("aggressive purge did not shrink exposure: %d -> %d", slowHidden, fastHidden)
	}
}
