package behavior

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
)

// Merge-law property tests over randomized, seed-deterministic inputs.
// The shard driver recombines per-shard tracker outputs in shard
// completion order, so each merge must be commutative and associative
// over disjoint apex populations with nil as the identity — and a
// partition of a canonical stream must merge back to exactly that
// stream.

func randomApex(rng *rand.Rand) dnsmsg.Name {
	return dnsmsg.Name(fmt.Sprintf("site-%04d.example.", rng.Intn(400)))
}

func randomKind(rng *rand.Rand) Kind {
	kinds := AllKinds()
	return kinds[rng.Intn(len(kinds))]
}

// randomDetections builds a canonically ordered detection stream (the
// order EndDay emits: ascending day, then apex, then kind).
func randomDetections(rng *rand.Rand, n int) []Detection {
	seen := make(map[Detection]bool)
	out := make([]Detection, 0, n)
	for len(out) < n {
		d := Detection{
			Day:  rng.Intn(30),
			Apex: randomApex(rng),
			Kind: randomKind(rng),
		}
		if seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return detectionLess(out[i], out[j]) })
	return out
}

func randomPauseWindows(rng *rand.Rand, n int) []PauseWindow {
	seen := make(map[PauseWindow]bool)
	out := make([]PauseWindow, 0, n)
	for len(out) < n {
		start := rng.Intn(25)
		w := PauseWindow{
			Apex:     randomApex(rng),
			Provider: dps.Cloudflare,
			StartDay: start,
			EndDay:   start + 1 + rng.Intn(10),
			Resumed:  rng.Intn(2) == 0,
			Censored: rng.Intn(8) == 0,
		}
		if seen[w] {
			continue
		}
		seen[w] = true
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return pauseWindowLess(out[i], out[j]) })
	return out
}

func randomCounts(rng *rand.Rand) map[int]map[Kind]int {
	out := make(map[int]map[Kind]int)
	for day := 0; day < 10; day++ {
		if rng.Intn(3) == 0 {
			continue
		}
		counts := make(map[Kind]int)
		for _, k := range AllKinds() {
			if rng.Intn(2) == 0 {
				counts[k] = rng.Intn(20)
			}
		}
		out[day] = counts
	}
	return out
}

// partitionDetections splits a stream by apex hash into k shard streams,
// preserving relative order — exactly what per-shard trackers over a
// partitioned population emit.
func partitionDetections(all []Detection, k int) [][]Detection {
	parts := make([][]Detection, k)
	for _, d := range all {
		i := int(d.Apex[5]-'0') % k
		parts[i] = append(parts[i], d)
	}
	return parts
}

func TestMergeDetectionsRecombinesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 100; trial++ {
		all := randomDetections(rng, 3+rng.Intn(60))
		k := 2 + rng.Intn(6)
		parts := partitionDetections(all, k)
		// Fold in a random order — shard completion order is arbitrary.
		var merged []Detection
		for _, i := range rng.Perm(k) {
			merged = MergeDetections(merged, parts[i])
		}
		if !reflect.DeepEqual(merged, all) {
			t.Fatalf("trial %d (k=%d): partition did not recombine\nmerged: %v\nwant:   %v",
				trial, k, merged, all)
		}
	}
}

func TestMergeDetectionsLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 100; trial++ {
		parts := partitionDetections(randomDetections(rng, 3+rng.Intn(40)), 3)
		a, b, c := parts[0], parts[1], parts[2]
		if !reflect.DeepEqual(MergeDetections(a, b), MergeDetections(b, a)) {
			t.Fatalf("trial %d: MergeDetections not commutative", trial)
		}
		left := MergeDetections(MergeDetections(a, b), c)
		right := MergeDetections(a, MergeDetections(b, c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: MergeDetections not associative", trial)
		}
		if got := MergeDetections(a, nil); !reflect.DeepEqual(got, a) {
			t.Fatalf("trial %d: nil is not a right identity: %v != %v", trial, got, a)
		}
		if got := MergeDetections(nil, a); !reflect.DeepEqual(got, a) {
			t.Fatalf("trial %d: nil is not a left identity: %v != %v", trial, got, a)
		}
	}
	if MergeDetections(nil, nil) != nil {
		t.Fatal("merging two empty streams must stay nil (quiet campaigns return nil)")
	}
}

func TestMergePauseWindowsRecombinesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 100; trial++ {
		all := randomPauseWindows(rng, 3+rng.Intn(50))
		k := 2 + rng.Intn(6)
		parts := make([][]PauseWindow, k)
		for _, w := range all {
			i := int(w.Apex[5]-'0') % k
			parts[i] = append(parts[i], w)
		}
		var merged []PauseWindow
		for _, i := range rng.Perm(k) {
			merged = MergePauseWindows(merged, parts[i])
		}
		if !reflect.DeepEqual(merged, all) {
			t.Fatalf("trial %d (k=%d): partition did not recombine\nmerged: %v\nwant:   %v",
				trial, k, merged, all)
		}
	}
	if MergePauseWindows(nil, nil) != nil {
		t.Fatal("merging two empty window lists must stay nil")
	}
}

func TestMergeCountsByDayLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 100; trial++ {
		a, b, c := randomCounts(rng), randomCounts(rng), randomCounts(rng)
		if !reflect.DeepEqual(MergeCountsByDay(a, b), MergeCountsByDay(b, a)) {
			t.Fatalf("trial %d: MergeCountsByDay not commutative", trial)
		}
		left := MergeCountsByDay(MergeCountsByDay(a, b), c)
		right := MergeCountsByDay(a, MergeCountsByDay(b, c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: MergeCountsByDay not associative", trial)
		}
	}
	if MergeCountsByDay(nil, nil) != nil {
		t.Fatal("nil·nil must stay nil")
	}
	// An empty non-nil map (a quiet campaign's CountsByDay) must stay
	// non-nil through a merge so merged results remain DeepEqual to
	// unsharded ones.
	if got := MergeCountsByDay(map[int]map[Kind]int{}, nil); got == nil || len(got) != 0 {
		t.Fatalf("empty·nil = %v, want empty non-nil", got)
	}
	// Summing: each day's per-kind counts add.
	a := map[int]map[Kind]int{1: {Join: 2, Leave: 1}}
	b := map[int]map[Kind]int{1: {Join: 3}, 2: {Pause: 4}}
	got := MergeCountsByDay(a, b)
	want := map[int]map[Kind]int{1: {Join: 5, Leave: 1}, 2: {Pause: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sum merge = %v, want %v", got, want)
	}
}
