package behavior

import (
	"reflect"
	"testing"

	"rrdps/internal/core/status"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
)

// TestSameDayPauseSwitchPrecedence pins Table IV precedence when a pause
// and a provider change land in the same observation interval: ON@P1 →
// OFF@P2 is a single SWITCH ("switched and arrived paused"), never
// PAUSE+SWITCH, and the exposure window that opens belongs to the new
// provider.
func TestSameDayPauseSwitchPrecedence(t *testing.T) {
	const apex = dnsmsg.Name("site.com")
	tr := NewTracker(nil)
	tr.Observe(0, day(apex, on(dps.Cloudflare)))
	dets := tr.Observe(1, day(apex, off(dps.Incapsula)))

	if want := []Kind{Switch}; !reflect.DeepEqual(kindsOf(dets), want) {
		t.Fatalf("ON@CF → OFF@Inc detections = %v, want %v", kindsOf(dets), want)
	}
	if dets[0].From != dps.Cloudflare || dets[0].To != dps.Incapsula {
		t.Fatalf("switch providers = %s → %s", dets[0].From, dets[0].To)
	}
	if tr.OpenPauseCount() != 1 {
		t.Fatalf("open pauses = %d, want 1", tr.OpenPauseCount())
	}

	// The window closes on resume at the NEW provider, attributed there.
	tr.Observe(2, day(apex, on(dps.Incapsula)))
	windows := tr.PauseWindows()
	if len(windows) != 1 {
		t.Fatalf("closed windows = %d, want 1", len(windows))
	}
	w := windows[0]
	if w.Provider != dps.Incapsula || !w.Resumed || w.ResumedAt != dps.Incapsula {
		t.Fatalf("window = %+v, want Incapsula-owned resumed window", w)
	}
	if w.StartDay != 1 || w.EndDay != 2 || w.Censored {
		t.Fatalf("window timing = %+v", w)
	}
}

// TestSameDayOffToOffSwitch pins the OFF→OFF provider change: one SWITCH,
// the old provider's window closes unresumed, and a fresh window opens at
// the new provider the same day.
func TestSameDayOffToOffSwitch(t *testing.T) {
	const apex = dnsmsg.Name("site.com")
	tr := NewTracker(nil)
	tr.Observe(0, day(apex, on(dps.Cloudflare)))
	tr.Observe(1, day(apex, off(dps.Cloudflare)))
	dets := tr.Observe(2, day(apex, off(dps.Edgecast)))

	if want := []Kind{Switch}; !reflect.DeepEqual(kindsOf(dets), want) {
		t.Fatalf("OFF@CF → OFF@EC detections = %v, want %v", kindsOf(dets), want)
	}
	closed := tr.PauseWindows()
	if len(closed) != 1 {
		t.Fatalf("closed windows = %d, want 1", len(closed))
	}
	if w := closed[0]; w.Provider != dps.Cloudflare || w.Resumed || w.StartDay != 1 || w.EndDay != 2 {
		t.Fatalf("closed window = %+v, want unresumed Cloudflare 1→2", w)
	}
	if tr.OpenPauseCount() != 1 {
		t.Fatalf("open pauses = %d, want 1 (Edgecast window)", tr.OpenPauseCount())
	}
}

// TestProviderAndMechanismChangeSameDay pins that a simultaneous provider
// and rerouting-mechanism change is exactly one SWITCH: Table IV tracks
// provider membership, and the mechanism (CNAME → NS) rides along without
// spawning extra detections.
func TestProviderAndMechanismChangeSameDay(t *testing.T) {
	const apex = dnsmsg.Name("site.com")
	tr := NewTracker(nil)
	tr.Observe(0, day(apex, status.Adoption{
		Status: status.StatusOn, Provider: dps.Incapsula, Rerouting: dps.ReroutingCNAME,
	}))
	dets := tr.Observe(1, day(apex, status.Adoption{
		Status: status.StatusOn, Provider: dps.Cloudflare, Rerouting: dps.ReroutingNS,
	}))

	if want := []Kind{Switch}; !reflect.DeepEqual(kindsOf(dets), want) {
		t.Fatalf("provider+mechanism change = %v, want %v", kindsOf(dets), want)
	}
	if dets[0].From != dps.Incapsula || dets[0].To != dps.Cloudflare {
		t.Fatalf("switch providers = %s → %s", dets[0].From, dets[0].To)
	}

	// Mechanism-only change at the same provider is NULL — no detection.
	if dets := tr.Observe(2, day(apex, status.Adoption{
		Status: status.StatusOn, Provider: dps.Cloudflare, Rerouting: dps.ReroutingCNAME,
	})); len(dets) != 0 {
		t.Fatalf("mechanism-only change detected %v, want nothing", kindsOf(dets))
	}
}

// TestStreamingObserveMatchesMap runs the same three-day scenario through
// the map-based Observe and the streaming BeginDay/ObserveOne/EndDay
// triple: detections, pause windows, and counts must be identical.
func TestStreamingObserveMatchesMap(t *testing.T) {
	a1, a2, a3 := dnsmsg.Name("a.com"), dnsmsg.Name("b.com"), dnsmsg.Name("c.com")
	days := []map[dnsmsg.Name]status.Adoption{
		{a1: on(dps.Cloudflare), a2: none(), a3: off(dps.Incapsula)},
		{a1: off(dps.Edgecast), a2: on(dps.Fastly), a3: on(dps.Incapsula)},
		{a1: none(), a2: on(dps.Fastly), a3: off(dps.Incapsula)},
	}

	mapTr := NewTracker([]dnsmsg.Name{a2})
	streamTr := NewTracker([]dnsmsg.Name{a2})
	for d, cur := range days {
		want := mapTr.Observe(d, cur)

		streamTr.BeginDay(d)
		for apex, adoption := range cur {
			streamTr.ObserveOne(apex, adoption)
		}
		got := streamTr.EndDay()

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("day %d: streaming %v != map %v", d, got, want)
		}
	}
	if !reflect.DeepEqual(streamTr.Detections(), mapTr.Detections()) {
		t.Fatal("detection histories differ")
	}
	if !reflect.DeepEqual(streamTr.PauseWindows(), mapTr.PauseWindows()) {
		t.Fatal("pause windows differ")
	}
	if !reflect.DeepEqual(streamTr.CountsByDay(), mapTr.CountsByDay()) {
		t.Fatal("daily counts differ")
	}
	if streamTr.OpenPauseCount() != mapTr.OpenPauseCount() {
		t.Fatal("open pause counts differ")
	}
}

// TestStreamingMisusePanics pins the guard rails of the streaming API.
func TestStreamingMisusePanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("ObserveOne outside a day", func() {
		NewTracker(nil).ObserveOne("a.com", on(dps.Cloudflare))
	})
	expectPanic("EndDay without BeginDay", func() {
		NewTracker(nil).EndDay()
	})
	expectPanic("nested BeginDay", func() {
		tr := NewTracker(nil)
		tr.BeginDay(0)
		tr.BeginDay(1)
	})
	expectPanic("non-increasing day", func() {
		tr := NewTracker(nil)
		tr.Observe(3, nil)
		tr.BeginDay(3)
	})
}
