package behavior

import (
	"testing"

	"rrdps/internal/core/status"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
)

func on(p dps.ProviderKey) status.Adoption {
	return status.Adoption{Status: status.StatusOn, Provider: p}
}
func off(p dps.ProviderKey) status.Adoption {
	return status.Adoption{Status: status.StatusOff, Provider: p}
}
func none() status.Adoption { return status.Adoption{Status: status.StatusNone} }

func day(apex dnsmsg.Name, a status.Adoption) map[dnsmsg.Name]status.Adoption {
	return map[dnsmsg.Name]status.Adoption{apex: a}
}

func kindsOf(dets []Detection) []Kind {
	out := make([]Kind, len(dets))
	for i, d := range dets {
		out[i] = d.Kind
	}
	return out
}

func TestTableIVTransitions(t *testing.T) {
	const apex = dnsmsg.Name("site.com")
	tests := []struct {
		name string
		prev status.Adoption
		cur  status.Adoption
		want []Kind
	}{
		{"join", none(), on(dps.Cloudflare), []Kind{Join}},
		{"join+pause", none(), off(dps.Cloudflare), []Kind{Join, Pause}},
		{"leave from on", on(dps.Cloudflare), none(), []Kind{Leave}},
		{"leave from off", off(dps.Cloudflare), none(), []Kind{Leave}},
		{"pause", on(dps.Cloudflare), off(dps.Cloudflare), []Kind{Pause}},
		{"resume", off(dps.Cloudflare), on(dps.Cloudflare), []Kind{Resume}},
		{"switch on-on", on(dps.Cloudflare), on(dps.Incapsula), []Kind{Switch}},
		{"switch off-on", off(dps.Cloudflare), on(dps.Incapsula), []Kind{Switch}},
		{"switch on-off", on(dps.Cloudflare), off(dps.Incapsula), []Kind{Switch}},
		{"null same", on(dps.Cloudflare), on(dps.Cloudflare), nil},
		{"null none", none(), none(), nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := NewTracker(nil)
			tr.Observe(0, day(apex, tt.prev))
			got := tr.Observe(1, day(apex, tt.cur))
			if len(got) != len(tt.want) {
				t.Fatalf("detections = %v, want kinds %v", got, tt.want)
			}
			for i, k := range tt.want {
				if got[i].Kind != k {
					t.Fatalf("detections = %v, want kinds %v", kindsOf(got), tt.want)
				}
			}
		})
	}
}

func TestDetectionProviders(t *testing.T) {
	const apex = dnsmsg.Name("site.com")
	tr := NewTracker(nil)
	tr.Observe(0, day(apex, on(dps.Cloudflare)))
	got := tr.Observe(1, day(apex, on(dps.Incapsula)))
	if len(got) != 1 || got[0].From != dps.Cloudflare || got[0].To != dps.Incapsula {
		t.Fatalf("switch detection = %+v", got)
	}
}

func TestPauseWindowTracking(t *testing.T) {
	const apex = dnsmsg.Name("site.com")
	tr := NewTracker(nil)
	tr.Observe(0, day(apex, on(dps.Cloudflare)))
	tr.Observe(1, day(apex, off(dps.Cloudflare)))
	tr.Observe(2, day(apex, off(dps.Cloudflare)))
	tr.Observe(3, day(apex, off(dps.Cloudflare)))
	tr.Observe(4, day(apex, on(dps.Cloudflare)))

	ws := tr.PauseWindows()
	if len(ws) != 1 {
		t.Fatalf("windows = %+v", ws)
	}
	w := ws[0]
	if w.StartDay != 1 || w.EndDay != 4 || w.Days() != 3 || !w.Resumed || w.ResumedAt != dps.Cloudflare {
		t.Fatalf("window = %+v", w)
	}
}

func TestPauseWindowCrossProviderResume(t *testing.T) {
	// Paper Fig. 5 "Overall" includes pauses at Cloudflare resumed at
	// Incapsula.
	const apex = dnsmsg.Name("site.com")
	tr := NewTracker(nil)
	tr.Observe(0, day(apex, on(dps.Cloudflare)))
	tr.Observe(1, day(apex, off(dps.Cloudflare)))
	tr.Observe(2, day(apex, on(dps.Incapsula)))
	ws := tr.PauseWindows()
	if len(ws) != 1 || !ws[0].Resumed || ws[0].ResumedAt != dps.Incapsula || ws[0].Provider != dps.Cloudflare {
		t.Fatalf("windows = %+v", ws)
	}
}

func TestPauseWindowClosedByLeave(t *testing.T) {
	const apex = dnsmsg.Name("site.com")
	tr := NewTracker(nil)
	tr.Observe(0, day(apex, on(dps.Cloudflare)))
	tr.Observe(1, day(apex, off(dps.Cloudflare)))
	tr.Observe(2, day(apex, none()))
	ws := tr.PauseWindows()
	if len(ws) != 1 || ws[0].Resumed {
		t.Fatalf("windows = %+v", ws)
	}
}

func TestFirstObservationBaselineNoDetections(t *testing.T) {
	tr := NewTracker(nil)
	got := tr.Observe(0, day("site.com", on(dps.Cloudflare)))
	if len(got) != 0 {
		t.Fatalf("baseline produced detections: %v", got)
	}
}

func TestMissingDomainCarriesForward(t *testing.T) {
	// A transient resolution failure (domain absent from the day's map)
	// must not register as LEAVE.
	const apex = dnsmsg.Name("site.com")
	tr := NewTracker(nil)
	tr.Observe(0, day(apex, on(dps.Cloudflare)))
	if got := tr.Observe(1, map[dnsmsg.Name]status.Adoption{}); len(got) != 0 {
		t.Fatalf("absence produced detections: %v", got)
	}
	if got := tr.Observe(2, day(apex, on(dps.Cloudflare))); len(got) != 0 {
		t.Fatalf("reappearance produced detections: %v", got)
	}
	got := tr.Observe(3, day(apex, none()))
	if len(got) != 1 || got[0].Kind != Leave {
		t.Fatalf("detections = %v, want LEAVE", got)
	}
}

func TestExcludedDomainIgnored(t *testing.T) {
	const apex = dnsmsg.Name("multicdn.com")
	tr := NewTracker([]dnsmsg.Name{apex})
	tr.Observe(0, day(apex, on(dps.Cloudflare)))
	got := tr.Observe(1, day(apex, on(dps.Fastly)))
	if len(got) != 0 {
		t.Fatalf("excluded domain produced detections: %v", got)
	}
}

func TestObserveOutOfOrderPanics(t *testing.T) {
	tr := NewTracker(nil)
	tr.Observe(3, day("a.com", none()))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Observe did not panic")
		}
	}()
	tr.Observe(3, day("a.com", none()))
}

func TestCounts(t *testing.T) {
	tr := NewTracker(nil)
	tr.Observe(0, map[dnsmsg.Name]status.Adoption{
		"a.com": none(), "b.com": on(dps.Cloudflare), "c.com": on(dps.Cloudflare),
	})
	tr.Observe(1, map[dnsmsg.Name]status.Adoption{
		"a.com": on(dps.Incapsula),   // JOIN
		"b.com": off(dps.Cloudflare), // PAUSE
		"c.com": none(),              // LEAVE
	})
	counts := tr.Counts()
	if counts[Join] != 1 || counts[Pause] != 1 || counts[Leave] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	byDay := tr.CountsByDay()
	if byDay[1][Join] != 1 || len(byDay[0]) != 0 {
		t.Fatalf("byDay = %v", byDay)
	}
	if len(tr.Detections()) != 3 {
		t.Fatalf("detections = %v", tr.Detections())
	}
}

func TestOffAtBaselineOpensWindow(t *testing.T) {
	const apex = dnsmsg.Name("site.com")
	tr := NewTracker(nil)
	tr.Observe(0, day(apex, off(dps.Incapsula)))
	if tr.OpenPauseCount() != 1 {
		t.Fatalf("open pauses = %d", tr.OpenPauseCount())
	}
	tr.Observe(2, day(apex, on(dps.Incapsula)))
	ws := tr.PauseWindows()
	if len(ws) != 1 || ws[0].Days() != 2 {
		t.Fatalf("windows = %+v", ws)
	}
	if !ws[0].Censored {
		t.Fatal("day-0 baseline window must be censored: its true start is unobserved")
	}
}

// TestLateAppearingOffDomainCensored is the ISSUE 3 regression test: a
// domain first seen OFF in the MIDDLE of a campaign (it resolved for the
// first time on day 3) is a baseline observation for that domain, so its
// window must open — and be censored — exactly like a day-0 baseline.
// Before the provenance fix, such windows entered duration statistics
// with a truncated (lower-bound) length.
func TestLateAppearingOffDomainCensored(t *testing.T) {
	const early = dnsmsg.Name("early.com")
	const late = dnsmsg.Name("late.com")
	tr := NewTracker(nil)

	// Days 0-2: only early.com is observable; late.com's resolution fails.
	tr.Observe(0, day(early, on(dps.Cloudflare)))
	tr.Observe(1, day(early, on(dps.Cloudflare)))
	tr.Observe(2, day(early, on(dps.Cloudflare)))

	// Day 3: late.com appears for the first time, already OFF. No
	// detection may fire (there is no previous state to diff against), but
	// an exposure window must open.
	dets := tr.Observe(3, map[dnsmsg.Name]status.Adoption{
		early: off(dps.Cloudflare),
		late:  off(dps.Incapsula),
	})
	for _, d := range dets {
		if d.Apex == late {
			t.Fatalf("baseline appearance produced detection %+v", d)
		}
	}
	if tr.OpenPauseCount() != 2 {
		t.Fatalf("open pauses = %d, want 2", tr.OpenPauseCount())
	}

	// Day 5: both resume.
	tr.Observe(5, map[dnsmsg.Name]status.Adoption{
		early: on(dps.Cloudflare),
		late:  on(dps.Incapsula),
	})
	byApex := map[dnsmsg.Name]PauseWindow{}
	for _, w := range tr.PauseWindows() {
		byApex[w.Apex] = w
	}
	if w := byApex[late]; !w.Censored || w.StartDay != 3 || w.EndDay != 5 {
		t.Fatalf("late window = %+v, want censored [3,5]", w)
	}
	// early.com's pause was observed ON→OFF, so it is a measured window.
	if w := byApex[early]; w.Censored || w.Days() != 2 {
		t.Fatalf("early window = %+v, want measured 2-day window", w)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range AllKinds() {
		if k.String() == "" {
			t.Fatalf("kind %d empty string", k)
		}
	}
}
