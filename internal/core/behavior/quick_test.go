package behavior

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rrdps/internal/core/status"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
)

// randomAdoption draws a plausible classification.
func randomAdoption(rng *rand.Rand) status.Adoption {
	providers := []dps.ProviderKey{dps.Cloudflare, dps.Incapsula, dps.Fastly}
	switch rng.Intn(3) {
	case 0:
		return status.Adoption{Status: status.StatusNone}
	case 1:
		return status.Adoption{Status: status.StatusOn, Provider: providers[rng.Intn(len(providers))]}
	default:
		return status.Adoption{Status: status.StatusOff, Provider: providers[rng.Intn(len(providers))]}
	}
}

// TestFSMDeterministicQuick: two trackers fed the same observation
// sequence produce identical detections and pause windows.
func TestFSMDeterministicQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64, nDays, nDomains uint8) bool {
		days := int(nDays)%10 + 2
		domains := int(nDomains)%8 + 1
		src := rand.New(rand.NewSource(seed))
		seq := make([]map[dnsmsg.Name]status.Adoption, days)
		for d := range seq {
			seq[d] = make(map[dnsmsg.Name]status.Adoption, domains)
			for i := 0; i < domains; i++ {
				apex := dnsmsg.Name(benchName(i))
				if src.Intn(10) == 0 {
					continue // simulate a resolution failure
				}
				seq[d][apex] = randomAdoption(src)
			}
		}
		a, b := NewTracker(nil), NewTracker(nil)
		for d := range seq {
			da := a.Observe(d, seq[d])
			db := b.Observe(d, seq[d])
			if !reflect.DeepEqual(da, db) {
				return false
			}
		}
		return reflect.DeepEqual(a.PauseWindows(), b.PauseWindows()) &&
			reflect.DeepEqual(a.Counts(), b.Counts())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestFSMConservationQuick: over any observation sequence, behaviour
// counts satisfy conservation laws — a domain cannot RESUME more often
// than it PAUSEd (+1 for a baseline OFF), and every closed pause window
// has non-negative length.
func TestFSMConservationQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64, nDays uint8) bool {
		days := int(nDays)%15 + 2
		src := rand.New(rand.NewSource(seed))
		tracker := NewTracker(nil)
		const apex = dnsmsg.Name("site.com")
		for d := 0; d < days; d++ {
			tracker.Observe(d, map[dnsmsg.Name]status.Adoption{apex: randomAdoption(src)})
		}
		counts := tracker.Counts()
		if counts[Resume] > counts[Pause]+1 {
			return false
		}
		for _, w := range tracker.PauseWindows() {
			if w.Days() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func benchName(i int) string {
	const letters = "abcdefghij"
	return "dom" + string(letters[i%10]) + ".com"
}
