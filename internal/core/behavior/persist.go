package behavior

import (
	"sort"

	"rrdps/internal/core/status"
	"rrdps/internal/dnsmsg"
)

// TrackerState is a Tracker's serializable shape between days: every
// domain's last classification (the FSM's per-domain state), the
// exclusion set, open and closed pause windows, the detection log, and
// the last observed day. Exporting mid-day (between BeginDay and EndDay)
// is a programming error — checkpoints land at day boundaries.
type TrackerState struct {
	Prev        []DomainAdoption
	Excluded    []dnsmsg.Name
	OpenPauses  []PauseWindow
	Closed      []PauseWindow
	Detections  []Detection
	ObservedDay int
}

// DomainAdoption is one domain's last observed classification.
type DomainAdoption struct {
	Apex     dnsmsg.Name
	Adoption status.Adoption
}

// ExportState captures the tracker's state with every map flattened into
// a sorted slice, so the encoding is deterministic.
func (t *Tracker) ExportState() TrackerState {
	if t.dayOpen {
		panic("behavior: ExportState with a day open")
	}
	st := TrackerState{
		Closed:      append([]PauseWindow(nil), t.closed...),
		Detections:  append([]Detection(nil), t.detections...),
		ObservedDay: t.observedDay,
	}
	for apex, a := range t.prev {
		st.Prev = append(st.Prev, DomainAdoption{Apex: apex, Adoption: a})
	}
	sort.Slice(st.Prev, func(i, j int) bool { return st.Prev[i].Apex < st.Prev[j].Apex })
	for apex := range t.excluded {
		st.Excluded = append(st.Excluded, apex)
	}
	sort.Slice(st.Excluded, func(i, j int) bool { return st.Excluded[i] < st.Excluded[j] })
	for _, w := range t.openPauses {
		st.OpenPauses = append(st.OpenPauses, w)
	}
	sort.Slice(st.OpenPauses, func(i, j int) bool { return st.OpenPauses[i].Apex < st.OpenPauses[j].Apex })
	return st
}

// RestoreTracker rebuilds a tracker from an exported state, continuing
// exactly where the exporting tracker stopped: the next BeginDay must
// exceed ObservedDay, and every pending pause window and FSM state
// carries over.
func RestoreTracker(st TrackerState) *Tracker {
	t := NewTracker(st.Excluded)
	t.observedDay = st.ObservedDay
	for _, da := range st.Prev {
		t.prev[da.Apex] = da.Adoption
	}
	for _, w := range st.OpenPauses {
		t.openPauses[w.Apex] = w
	}
	t.closed = append([]PauseWindow(nil), st.Closed...)
	t.detections = append([]Detection(nil), st.Detections...)
	return t
}
