package behavior

// Shard-merge helpers. A shard-parallel campaign (internal/shardrun)
// runs one Tracker per population shard; because the FSM keeps purely
// per-apex state, a partitioned population's trackers observe exactly
// the records an unsharded tracker would, and their outputs recombine
// by ordered merge. The merge functions below reproduce the canonical
// orders the Tracker itself emits — Detections in day-major
// (apex, kind) order, PauseWindows sorted by (start day, apex, end
// day) — so Merge(shard outputs) is value-identical to the unsharded
// tracker's output. All three are commutative and associative over
// disjoint apex populations, with nil as the identity element (pinned
// by the merge-law property tests).

// MergeDetections merges two detection streams from disjoint apex
// populations into one canonically ordered stream: ascending Day, then
// Apex, then Kind — the global order EndDay's per-day sort induces,
// since days strictly increase. It returns nil when both inputs are
// empty, matching Tracker.Detections on a quiet campaign.
func MergeDetections(a, b []Detection) []Detection {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Detection, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if detectionLess(a[i], b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func detectionLess(x, y Detection) bool {
	if x.Day != y.Day {
		return x.Day < y.Day
	}
	if x.Apex != y.Apex {
		return x.Apex < y.Apex
	}
	return x.Kind < y.Kind
}

// MergePauseWindows merges two closed-window lists from disjoint apex
// populations, keeping the canonical PauseWindows order: ascending
// StartDay, then Apex, then EndDay. Nil in, nil out.
func MergePauseWindows(a, b []PauseWindow) []PauseWindow {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]PauseWindow, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if pauseWindowLess(a[i], b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func pauseWindowLess(x, y PauseWindow) bool {
	if x.StartDay != y.StartDay {
		return x.StartDay < y.StartDay
	}
	if x.Apex != y.Apex {
		return x.Apex < y.Apex
	}
	return x.EndDay < y.EndDay
}

// MergeCountsByDay sums two Fig. 3 per-day per-kind count maps. It
// returns nil only when both inputs are nil; an empty non-nil map (what
// CountsByDay returns on a quiet campaign) merges to an empty non-nil
// map, so merged results stay DeepEqual to unsharded ones.
func MergeCountsByDay(a, b map[int]map[Kind]int) map[int]map[Kind]int {
	if a == nil && b == nil {
		return nil
	}
	out := make(map[int]map[Kind]int, len(a)+len(b))
	for _, src := range []map[int]map[Kind]int{a, b} {
		for day, counts := range src {
			dst := out[day]
			if dst == nil {
				dst = make(map[Kind]int, len(counts))
				out[day] = dst
			}
			for kind, n := range counts {
				dst[kind] += n
			}
		}
	}
	return out
}
