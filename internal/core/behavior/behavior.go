// Package behavior implements the paper's usage-behaviour detection
// (§IV-B.3): diffing consecutive daily DPS-status snapshots through the
// finite state machine of Fig. 4 to detect LEAVE, JOIN, PAUSE, RESUME, and
// SWITCH (Table IV), and tracking pause windows (the exposure windows of
// Fig. 5).
package behavior

import (
	"fmt"
	"sort"

	"rrdps/internal/core/status"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
)

// Kind is a detected usage behaviour (Table IV).
type Kind int

// Usage behaviours.
const (
	Join Kind = iota + 1
	Leave
	Pause
	Resume
	Switch
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Join:
		return "JOIN"
	case Leave:
		return "LEAVE"
	case Pause:
		return "PAUSE"
	case Resume:
		return "RESUME"
	case Switch:
		return "SWITCH"
	default:
		return fmt.Sprintf("KIND%d", int(k))
	}
}

// AllKinds lists the Table IV behaviours in order.
func AllKinds() []Kind { return []Kind{Join, Leave, Pause, Resume, Switch} }

// Detection is one detected behaviour. Two behaviours can fire on the same
// day for one domain (e.g. J+P when a site joins and immediately pauses);
// each is reported as its own Detection.
type Detection struct {
	Day  int
	Apex dnsmsg.Name
	Kind Kind
	From dps.ProviderKey // "" where not applicable
	To   dps.ProviderKey
}

// PauseWindow is one OFF interval — the origin-exposure window of §IV-C.1.
type PauseWindow struct {
	Apex     dnsmsg.Name
	Provider dps.ProviderKey // provider where the pause started
	StartDay int
	EndDay   int
	// Resumed is true when the window closed with protection back ON
	// (possibly at another provider); false when the site left instead.
	Resumed bool
	// ResumedAt is the provider where protection resumed.
	ResumedAt dps.ProviderKey
	// Censored is true when the window was opened at a baseline
	// observation — the campaign's day 0, or a domain's first appearance
	// mid-campaign — where the site was already OFF. The true start of
	// such a window predates observation by an unknown amount, so its
	// Days() is a lower bound; duration statistics (the Fig. 5 CDF) must
	// exclude censored windows or they skew short.
	Censored bool
}

// Days returns the window length in days.
func (w PauseWindow) Days() int { return w.EndDay - w.StartDay }

// Tracker consumes daily classifications — as whole maps (Observe) or as
// a stream (BeginDay/ObserveOne/EndDay) — and emits detections.
type Tracker struct {
	prev        map[dnsmsg.Name]status.Adoption
	excluded    map[dnsmsg.Name]bool
	openPauses  map[dnsmsg.Name]PauseWindow
	closed      []PauseWindow
	detections  []Detection
	observedDay int

	// Streaming-day state, valid between BeginDay and EndDay.
	dayOpen  bool
	dayFirst bool
	dayOut   []Detection
}

// NewTracker creates a tracker. Domains in excluded — e.g. multi-CDN
// front-ends like Cedexis customers, whose dynamic selection defeats
// day-over-day attribution (§IV-B.3) — are ignored entirely.
func NewTracker(excluded []dnsmsg.Name) *Tracker {
	ex := make(map[dnsmsg.Name]bool, len(excluded))
	for _, apex := range excluded {
		ex[apex] = true
	}
	return &Tracker{
		prev:        make(map[dnsmsg.Name]status.Adoption),
		excluded:    ex,
		openPauses:  make(map[dnsmsg.Name]PauseWindow),
		observedDay: -1,
	}
}

// Observe ingests one day's classifications and returns the behaviours
// detected against the previous day. Domains absent from cur (e.g. their
// resolution failed) carry their previous state forward — a transient
// SERVFAIL must not read as a LEAVE. It is the map-based form of the
// streaming BeginDay/ObserveOne/EndDay triple and produces identical
// state and detections.
func (t *Tracker) Observe(day int, cur map[dnsmsg.Name]status.Adoption) []Detection {
	t.BeginDay(day)
	for apex, adoption := range cur {
		t.ObserveOne(apex, adoption)
	}
	return t.EndDay()
}

// BeginDay opens a streaming observation day. Feed every classified
// domain through ObserveOne, then close with EndDay. Days must be
// observed in strictly increasing order.
func (t *Tracker) BeginDay(day int) {
	if t.dayOpen {
		panic(fmt.Sprintf("behavior: BeginDay(%d) with day %d still open", day, t.observedDay))
	}
	if day <= t.observedDay {
		panic(fmt.Sprintf("behavior: BeginDay(%d) after day %d", day, t.observedDay))
	}
	t.dayOpen = true
	t.dayFirst = t.observedDay < 0
	t.observedDay = day
	t.dayOut = nil
}

// ObserveOne ingests one domain's classification for the open day,
// diffing it against the domain's previous state as it arrives — the
// streaming half of the Fig. 4 FSM. Order does not matter: the day's
// detections are canonically sorted at EndDay.
func (t *Tracker) ObserveOne(apex dnsmsg.Name, adoption status.Adoption) {
	if !t.dayOpen {
		panic("behavior: ObserveOne outside BeginDay/EndDay")
	}
	if t.excluded[apex] {
		return
	}
	day := t.observedDay
	prev, seen := t.prev[apex]
	t.prev[apex] = adoption
	if t.dayFirst || !seen {
		// Baseline observation — the campaign's first day, or a domain
		// appearing mid-campaign: record state, detect nothing; but a
		// site first seen OFF has an open exposure window. Its true
		// start is unobserved (the site may have been OFF for weeks
		// already), so the window is censored and excluded from
		// duration statistics.
		if adoption.Status == status.StatusOff {
			t.openPauses[apex] = PauseWindow{Apex: apex, Provider: adoption.Provider, StartDay: day, Censored: true}
		}
		return
	}
	t.dayOut = append(t.dayOut, t.transition(day, apex, prev, adoption)...)
}

// EndDay closes the open day and returns its detections, sorted by
// (apex, kind) — the same canonical order Observe returns.
func (t *Tracker) EndDay() []Detection {
	if !t.dayOpen {
		panic("behavior: EndDay without BeginDay")
	}
	t.dayOpen = false
	out := t.dayOut
	t.dayOut = nil
	sort.Slice(out, func(i, j int) bool {
		if out[i].Apex != out[j].Apex {
			return out[i].Apex < out[j].Apex
		}
		return out[i].Kind < out[j].Kind
	})
	t.detections = append(t.detections, out...)
	return out
}

// transition applies the Fig. 4 FSM to one domain's day-over-day change.
func (t *Tracker) transition(day int, apex dnsmsg.Name, prev, cur status.Adoption) []Detection {
	if prev.Status == cur.Status && prev.Provider == cur.Provider {
		return nil // NULL
	}
	var out []Detection
	emit := func(kind Kind, from, to dps.ProviderKey) {
		out = append(out, Detection{Day: day, Apex: apex, Kind: kind, From: from, To: to})
	}

	switch prev.Status {
	case status.StatusNone:
		switch cur.Status {
		case status.StatusOn:
			emit(Join, "", cur.Provider)
		case status.StatusOff:
			// J+P: joined and paused within one interval.
			emit(Join, "", cur.Provider)
			emit(Pause, cur.Provider, cur.Provider)
			t.openPauses[apex] = PauseWindow{Apex: apex, Provider: cur.Provider, StartDay: day}
		}
	case status.StatusOn:
		switch cur.Status {
		case status.StatusNone:
			emit(Leave, prev.Provider, "")
		case status.StatusOff:
			if cur.Provider == prev.Provider {
				emit(Pause, prev.Provider, prev.Provider)
			} else {
				// Switched and arrived paused.
				emit(Switch, prev.Provider, cur.Provider)
			}
			t.openPauses[apex] = PauseWindow{Apex: apex, Provider: cur.Provider, StartDay: day}
		case status.StatusOn:
			emit(Switch, prev.Provider, cur.Provider)
		}
	case status.StatusOff:
		switch cur.Status {
		case status.StatusNone:
			emit(Leave, prev.Provider, "")
			t.closePause(apex, day, false, "")
		case status.StatusOn:
			if cur.Provider == prev.Provider {
				emit(Resume, prev.Provider, prev.Provider)
			} else {
				emit(Switch, prev.Provider, cur.Provider)
			}
			t.closePause(apex, day, true, cur.Provider)
		case status.StatusOff:
			// Provider changed while staying OFF.
			emit(Switch, prev.Provider, cur.Provider)
			t.closePause(apex, day, false, "")
			t.openPauses[apex] = PauseWindow{Apex: apex, Provider: cur.Provider, StartDay: day}
		}
	}
	return out
}

func (t *Tracker) closePause(apex dnsmsg.Name, day int, resumed bool, at dps.ProviderKey) {
	w, ok := t.openPauses[apex]
	if !ok {
		return
	}
	delete(t.openPauses, apex)
	w.EndDay = day
	w.Resumed = resumed
	w.ResumedAt = at
	t.closed = append(t.closed, w)
}

// Detections returns every detection so far, in observation order.
func (t *Tracker) Detections() []Detection {
	return append([]Detection(nil), t.detections...)
}

// PauseWindows returns the closed pause windows, ordered by start day and
// apex (observation order over a map is not deterministic; reports must
// be).
func (t *Tracker) PauseWindows() []PauseWindow {
	out := append([]PauseWindow(nil), t.closed...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartDay != out[j].StartDay {
			return out[i].StartDay < out[j].StartDay
		}
		if out[i].Apex != out[j].Apex {
			return out[i].Apex < out[j].Apex
		}
		return out[i].EndDay < out[j].EndDay
	})
	return out
}

// OpenPauseCount returns how many pause windows are still open.
func (t *Tracker) OpenPauseCount() int { return len(t.openPauses) }

// CountsByDay aggregates detections per day per kind — the Fig. 3 series.
func (t *Tracker) CountsByDay() map[int]map[Kind]int {
	out := make(map[int]map[Kind]int)
	for _, d := range t.detections {
		if out[d.Day] == nil {
			out[d.Day] = make(map[Kind]int)
		}
		out[d.Day][d.Kind]++
	}
	return out
}

// DayCounts aggregates one day's detections per kind — the single-day
// increment of CountsByDay, for consumers (the follow-mode daemons) that
// fold artifacts forward one appended day at a time instead of
// re-aggregating the whole campaign.
func (t *Tracker) DayCounts(day int) map[Kind]int {
	out := make(map[Kind]int)
	// Detections are appended in day order, so the day's block is a
	// suffix scan that stops as soon as an earlier day appears.
	for i := len(t.detections) - 1; i >= 0; i-- {
		d := t.detections[i]
		if d.Day != day {
			if d.Day < day {
				break
			}
			continue
		}
		out[d.Kind]++
	}
	return out
}

// Counts aggregates total detections per kind.
func (t *Tracker) Counts() map[Kind]int {
	out := make(map[Kind]int)
	for _, d := range t.detections {
		out[d.Kind]++
	}
	return out
}
