// Package dnsmsg implements the subset of the DNS wire format (RFC 1035)
// used by the simulated Internet: messages with A, NS, CNAME, SOA, MX, TXT
// and AAAA records, including name compression.
//
// Having a real codec (rather than passing Go structs around) keeps the
// simulated nameservers and resolvers honest: every query and answer in the
// measurement pipeline crosses a byte boundary exactly as it would on the
// wire, so truncation, case handling, and compression bugs are observable.
package dnsmsg

import (
	"errors"
	"fmt"
	"strings"
)

// Name is a fully-qualified, normalized (lowercase, no trailing dot) domain
// name. The root zone is the empty Name.
type Name string

// Name validation errors.
var (
	ErrNameTooLong  = errors.New("dnsmsg: name exceeds 253 octets")
	ErrLabelTooLong = errors.New("dnsmsg: label exceeds 63 octets")
	ErrEmptyLabel   = errors.New("dnsmsg: empty label")
)

// ParseName normalizes and validates s as a domain name. It accepts an
// optional trailing dot and uppercase letters; "." and "" both denote the
// root.
func ParseName(s string) (Name, error) {
	s = strings.TrimSuffix(strings.ToLower(s), ".")
	if s == "" {
		return "", nil
	}
	if len(s) > 253 {
		return "", fmt.Errorf("parsing %q: %w", s, ErrNameTooLong)
	}
	for _, label := range strings.Split(s, ".") {
		if label == "" {
			return "", fmt.Errorf("parsing %q: %w", s, ErrEmptyLabel)
		}
		if len(label) > 63 {
			return "", fmt.Errorf("parsing %q: %w", s, ErrLabelTooLong)
		}
	}
	return Name(s), nil
}

// MustParseName is ParseName but panics on error; for constants and tests.
func MustParseName(s string) Name {
	n, err := ParseName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String implements fmt.Stringer, rendering the root as ".".
func (n Name) String() string {
	if n == "" {
		return "."
	}
	return string(n)
}

// Labels returns the name's labels, leftmost first. The root has none.
func (n Name) Labels() []string {
	if n == "" {
		return nil
	}
	return strings.Split(string(n), ".")
}

// IsRoot reports whether n is the DNS root.
func (n Name) IsRoot() bool { return n == "" }

// Parent returns the name with its leftmost label removed. The parent of
// the root is the root.
func (n Name) Parent() Name {
	if i := strings.IndexByte(string(n), '.'); i >= 0 {
		return n[i+1:]
	}
	return ""
}

// Child returns label.n. It panics on an invalid label; children are built
// from validated configuration, not wire input.
func (n Name) Child(label string) Name {
	label = strings.ToLower(label)
	if label == "" || len(label) > 63 || strings.Contains(label, ".") {
		panic(fmt.Sprintf("dnsmsg: invalid label %q", label))
	}
	if n == "" {
		return Name(label)
	}
	return Name(label) + "." + n
}

// IsSubdomainOf reports whether n equals zone or falls under it. Every name
// is a subdomain of the root.
func (n Name) IsSubdomainOf(zone Name) bool {
	if zone == "" {
		return true
	}
	if n == zone {
		return true
	}
	return strings.HasSuffix(string(n), "."+string(zone))
}

// ContainsSubstring reports whether needle occurs in any label of n. The
// paper's CNAME- and NS-matching (§IV-B.2) identifies providers by unique
// substrings such as "cloudflare" or "incapdns"; this is that primitive.
func (n Name) ContainsSubstring(needle string) bool {
	return strings.Contains(string(n), strings.ToLower(needle))
}
