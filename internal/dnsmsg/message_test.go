package dnsmsg

import (
	"net/netip"
	"strings"
	"testing"
	"time"
)

func TestQuestionAccessor(t *testing.T) {
	m := NewQuery(9, "www.example.com", TypeA)
	q := m.Question()
	if q.Name != "www.example.com" || q.Type != TypeA || q.Class != ClassIN {
		t.Fatalf("Question() = %+v", q)
	}
	empty := &Message{}
	if got := empty.Question(); got != (Question{}) {
		t.Fatalf("empty Question() = %+v", got)
	}
}

func TestAnswersOfType(t *testing.T) {
	m := &Message{Answers: []RR{
		NewCNAME("a.com", time.Minute, "b.com"),
		NewA("b.com", time.Minute, netip.MustParseAddr("10.0.0.1")),
		NewA("b.com", time.Minute, netip.MustParseAddr("10.0.0.2")),
	}}
	if got := len(m.AnswersOfType(TypeA)); got != 2 {
		t.Errorf("A answers = %d, want 2", got)
	}
	if got := len(m.AnswersOfType(TypeCNAME)); got != 1 {
		t.Errorf("CNAME answers = %d, want 1", got)
	}
	if got := m.AnswersOfType(TypeNS); got != nil {
		t.Errorf("NS answers = %v, want nil", got)
	}
}

func TestNewResponseEchoesQuery(t *testing.T) {
	q := NewQuery(77, "x.org", TypeNS)
	r := NewResponse(q, RCodeNXDomain)
	if !r.Header.Response || r.Header.ID != 77 || r.Header.RCode != RCodeNXDomain {
		t.Fatalf("header = %+v", r.Header)
	}
	if !r.Header.RecursionDesired {
		t.Error("RD bit not echoed")
	}
	if len(r.Questions) != 1 || r.Questions[0] != q.Questions[0] {
		t.Fatalf("questions = %+v", r.Questions)
	}
}

func TestStringForms(t *testing.T) {
	rr := NewA("example.com", 90*time.Second, netip.MustParseAddr("10.1.2.3"))
	if got := rr.String(); got != "example.com 90 IN A 10.1.2.3" {
		t.Errorf("RR.String() = %q", got)
	}
	for typ, want := range map[Type]string{
		TypeA: "A", TypeNS: "NS", TypeCNAME: "CNAME", TypeSOA: "SOA",
		TypeMX: "MX", TypeTXT: "TXT", TypeAAAA: "AAAA", Type(99): "TYPE99",
	} {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", uint16(typ), got, want)
		}
	}
	for rc, want := range map[RCode]string{
		RCodeNoError: "NOERROR", RCodeServFail: "SERVFAIL", RCodeNXDomain: "NXDOMAIN",
		RCodeRefused: "REFUSED", RCode(15): "RCODE15",
	} {
		if got := rc.String(); got != want {
			t.Errorf("RCode(%d).String() = %q, want %q", uint8(rc), got, want)
		}
	}
	msg := sampleMessage()
	s := msg.String()
	for _, frag := range []string{"response", "NOERROR", "www.example.com", "an:", "ns:", "ad:"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Message.String() missing %q in:\n%s", frag, s)
		}
	}
}

func TestRRTypeNilData(t *testing.T) {
	if got := (RR{}).Type(); got != 0 {
		t.Fatalf("zero RR Type() = %v, want 0", got)
	}
}
