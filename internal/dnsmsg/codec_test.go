package dnsmsg

import (
	"errors"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func sampleMessage() *Message {
	q := NewQuery(4660, MustParseName("www.example.com"), TypeA)
	resp := NewResponse(q, RCodeNoError)
	resp.Header.Authoritative = true
	resp.Answers = []RR{
		NewCNAME("www.example.com", 300*time.Second, "www.example.com.cdn.incapdns.net"),
		NewA("www.example.com.cdn.incapdns.net", 30*time.Second, netip.MustParseAddr("199.83.128.17")),
	}
	resp.Authority = []RR{
		NewNS("example.com", 86400*time.Second, "kate.ns.cloudflare.com"),
		NewNS("example.com", 86400*time.Second, "rob.ns.cloudflare.com"),
	}
	resp.Additional = []RR{
		NewA("kate.ns.cloudflare.com", 3600*time.Second, netip.MustParseAddr("173.245.58.1")),
		NewMX("example.com", 3600*time.Second, 10, "mail.example.com"),
		NewTXT("example.com", 60*time.Second, "v=spf1 -all", "probe"),
		NewSOA("example.com", 900*time.Second, "kate.ns.cloudflare.com", "dns.cloudflare.com", 2034),
	}
	return resp
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msg := sampleMessage()
	wire, err := Encode(msg)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(msg, got) {
		t.Fatalf("round trip mismatch:\nsent: %s\ngot:  %s", msg, got)
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	msg := sampleMessage()
	wire := MustEncode(msg)
	// Rough uncompressed size: every name spelled out in full.
	uncompressed := 12
	countName := func(n Name) int { return len(n) + 2 }
	for _, q := range msg.Questions {
		uncompressed += countName(q.Name) + 4
	}
	for _, sec := range [][]RR{msg.Answers, msg.Authority, msg.Additional} {
		for _, rr := range sec {
			uncompressed += countName(rr.Name) + 10 + 24 // generous rdata estimate
		}
	}
	if len(wire) >= uncompressed {
		t.Fatalf("compressed size %d not smaller than uncompressed estimate %d", len(wire), uncompressed)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	wire := MustEncode(sampleMessage())
	for _, cut := range []int{1, 5, 11, len(wire) / 2, len(wire) - 1} {
		if _, err := Decode(wire[:cut]); err == nil {
			t.Errorf("Decode of %d/%d bytes succeeded", cut, len(wire))
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	wire := MustEncode(sampleMessage())
	if _, err := Decode(append(wire, 0x00)); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("err = %v, want ErrTrailingBytes", err)
	}
}

func TestDecodeRejectsForwardPointer(t *testing.T) {
	// Hand-craft a query whose qname is a pointer to itself.
	buf := []byte{
		0x00, 0x01, // ID
		0x00, 0x00, // flags
		0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // counts: 1 question
		0xC0, 0x0C, // pointer to offset 12 (itself)
		0x00, 0x01, 0x00, 0x01, // type A, class IN
	}
	if _, err := Decode(buf); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("err = %v, want ErrBadPointer", err)
	}
}

func TestDecodeRejectsBadLabelTag(t *testing.T) {
	buf := []byte{
		0x00, 0x01,
		0x00, 0x00,
		0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0x80, // reserved tag 10xxxxxx
		0x00, 0x01, 0x00, 0x01,
	}
	if _, err := Decode(buf); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("err = %v, want ErrBadPointer", err)
	}
}

func TestDecodeRejectsUnsupportedType(t *testing.T) {
	msg := NewQuery(1, "example.com", TypeA)
	resp := NewResponse(msg, RCodeNoError)
	resp.Answers = []RR{NewA("example.com", time.Minute, netip.MustParseAddr("10.0.0.1"))}
	wire := MustEncode(resp)
	// Rewrite the answer's TYPE field (name is a pointer here: 2 bytes).
	// Layout: header(12) + question(qname+4) + answer(2-byte ptr + type...).
	qnameLen := len("example.com") + 2
	typeOff := 12 + qnameLen + 4 + 2
	wire[typeOff] = 0x00
	wire[typeOff+1] = 0x63 // TYPE99 (SPF), unsupported
	if _, err := Decode(wire); !errors.Is(err, ErrUnsupportedRR) {
		t.Fatalf("err = %v, want ErrUnsupportedRR", err)
	}
}

func TestEncodeRejectsMixedAddressFamilies(t *testing.T) {
	m := NewQuery(1, "x.com", TypeA)
	r := NewResponse(m, RCodeNoError)
	r.Answers = []RR{{Name: "x.com", Class: ClassIN, TTL: time.Minute, Data: AData{Addr: netip.MustParseAddr("2001:db8::1")}}}
	if _, err := Encode(r); err == nil {
		t.Error("encoding A record with IPv6 address succeeded")
	}
	r.Answers = []RR{{Name: "x.com", Class: ClassIN, TTL: time.Minute, Data: AAAAData{Addr: netip.MustParseAddr("10.0.0.1")}}}
	if _, err := Encode(r); err == nil {
		t.Error("encoding AAAA record with IPv4 address succeeded")
	}
}

func TestEncodeRejectsNilRData(t *testing.T) {
	m := NewQuery(1, "x.com", TypeA)
	r := NewResponse(m, RCodeNoError)
	r.Answers = []RR{{Name: "x.com", Class: ClassIN, TTL: time.Minute}}
	if _, err := Encode(r); err == nil {
		t.Error("encoding nil rdata succeeded")
	}
}

func TestTTLClamping(t *testing.T) {
	m := NewQuery(1, "x.com", TypeA)
	r := NewResponse(m, RCodeNoError)
	r.Answers = []RR{NewA("x.com", -5*time.Second, netip.MustParseAddr("10.0.0.1"))}
	got, err := Decode(MustEncode(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].TTL != 0 {
		t.Errorf("negative TTL decoded as %v, want 0", got.Answers[0].TTL)
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	m := &Message{Header: Header{
		ID:                 0xBEEF,
		Response:           true,
		Opcode:             OpcodeQuery,
		Authoritative:      true,
		Truncated:          true,
		RecursionDesired:   true,
		RecursionAvailable: true,
		RCode:              RCodeRefused,
	}}
	got, err := Decode(MustEncode(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != m.Header {
		t.Fatalf("header = %+v, want %+v", got.Header, m.Header)
	}
}

// randomName builds a plausible random domain name.
func randomName(rng *rand.Rand) Name {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789-"
	labels := 1 + rng.Intn(4)
	name := Name("")
	for i := 0; i < labels; i++ {
		n := 1 + rng.Intn(12)
		b := make([]byte, n)
		for j := range b {
			b[j] = alpha[rng.Intn(len(alpha)-1)] // avoid '-' heavy names; fine either way
		}
		name = name.Child(string(b))
	}
	return name
}

func randomRR(rng *rand.Rand) RR {
	name := randomName(rng)
	ttl := time.Duration(rng.Intn(86400)) * time.Second
	switch rng.Intn(6) {
	case 0:
		var a [4]byte
		rng.Read(a[:])
		return NewA(name, ttl, netip.AddrFrom4(a))
	case 1:
		return NewNS(name, ttl, randomName(rng))
	case 2:
		return NewCNAME(name, ttl, randomName(rng))
	case 3:
		return NewMX(name, ttl, uint16(rng.Intn(100)), randomName(rng))
	case 4:
		return NewTXT(name, ttl, "k=v", "probe")
	default:
		return NewSOA(name, ttl, randomName(rng), randomName(rng), rng.Uint32())
	}
}

// Property: Decode(Encode(m)) == m for arbitrary well-formed messages.
func TestRoundTripQuickProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(id uint16, nAns, nAuth uint8) bool {
		q := NewQuery(id, randomName(rng), TypeA)
		m := NewResponse(q, RCode(rng.Intn(6)))
		for i := 0; i < int(nAns%5); i++ {
			m.Answers = append(m.Answers, randomRR(rng))
		}
		for i := 0; i < int(nAuth%4); i++ {
			m.Authority = append(m.Authority, randomRR(rng))
		}
		wire, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding arbitrary garbage never panics.
func TestDecodeGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(n uint16) bool {
		b := make([]byte, int(n)%400)
		rng.Read(b)
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", b, r)
			}
		}()
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestTTLHighBitClampedOnDecode pins the RFC 2181 §8 rule found by
// fuzzing: a TTL with the MSB set decodes as zero, keeping decoding
// canonical.
func TestTTLHighBitClampedOnDecode(t *testing.T) {
	msg := NewQuery(1, "x.com", TypeA)
	resp := NewResponse(msg, RCodeNoError)
	resp.Answers = []RR{NewA("x.com", time.Minute, netip.MustParseAddr("10.0.0.1"))}
	wire := MustEncode(resp)
	// Overwrite the answer TTL with 0xCC303030 (> 2^31-1).
	qnameLen := len("x.com") + 2
	ttlOff := 12 + qnameLen + 4 + 2 + 2 + 2
	copy(wire[ttlOff:], []byte{0xCC, 0x30, 0x30, 0x30})
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].TTL != 0 {
		t.Fatalf("MSB-set TTL decoded as %v, want 0", got.Answers[0].TTL)
	}
}
