package dnsmsg

import (
	"reflect"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the wire decoder; it must never
// panic, and anything it accepts must re-encode and re-decode to the same
// message (decode/encode/decode fixpoint).
func FuzzDecode(f *testing.F) {
	f.Add(MustEncode(sampleMessage()))
	f.Add(MustEncode(NewQuery(7, "www.example.com", TypeA)))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0C, 0, 1, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		wire, err := Encode(msg)
		if err != nil {
			// A decoded message can fail to re-encode only for payloads
			// the encoder rejects by policy (e.g. counts); it must not
			// happen for structurally valid records.
			t.Fatalf("re-encode of decoded message failed: %v\n%s", err, msg)
		}
		again, err := Decode(wire)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(msg, again) {
			t.Fatalf("decode/encode/decode fixpoint violated:\nfirst:  %s\nsecond: %s", msg, again)
		}
	})
}

// FuzzParseName: arbitrary strings must either parse to a name that
// round-trips through String/ParseName, or error — never panic.
func FuzzParseName(f *testing.F) {
	f.Add("www.example.com")
	f.Add(".")
	f.Add("a..b")
	f.Add("ümlaut.example")
	f.Fuzz(func(t *testing.T, s string) {
		n, err := ParseName(s)
		if err != nil {
			return
		}
		again, err := ParseName(n.String())
		if err != nil || again != n {
			t.Fatalf("round trip of %q: %q, %v", n, again, err)
		}
	})
}
