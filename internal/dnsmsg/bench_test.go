package dnsmsg

import "testing"

func BenchmarkEncode(b *testing.B) {
	msg := sampleMessage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	wire := MustEncode(sampleMessage())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeQuery(b *testing.B) {
	q := NewQuery(1, "www.example.com", TypeA)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseName(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseName("WWW.Some-Long-Label.Example.COM."); err != nil {
			b.Fatal(err)
		}
	}
}
