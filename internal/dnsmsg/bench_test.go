package dnsmsg

import "testing"

func BenchmarkEncode(b *testing.B) {
	msg := sampleMessage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	wire := MustEncode(sampleMessage())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	wire := MustEncode(sampleMessage())
	var d Decoder
	var m Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.DecodeInto(wire, &m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeQuery(b *testing.B) {
	q := NewQuery(1, "www.example.com", TypeA)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncoderEncodeQuery(b *testing.B) {
	var e Encoder
	name := MustParseName("www.example.com")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EncodeQuery(uint16(i), name, TypeA)
	}
}

func BenchmarkParseName(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseName("WWW.Some-Long-Label.Example.COM."); err != nil {
			b.Fatal(err)
		}
	}
}
