package dnsmsg

import (
	"errors"
	"strings"
	"testing"
)

func TestParseName(t *testing.T) {
	tests := []struct {
		in      string
		want    Name
		wantErr error
	}{
		{"example.com", "example.com", nil},
		{"Example.COM.", "example.com", nil},
		{"www.example.com", "www.example.com", nil},
		{".", "", nil},
		{"", "", nil},
		{"a..b", "", ErrEmptyLabel},
		{strings.Repeat("a", 64) + ".com", "", ErrLabelTooLong},
		{strings.Repeat("abcd.", 60) + "com", "", ErrNameTooLong},
	}
	for _, tt := range tests {
		got, err := ParseName(tt.in)
		if tt.wantErr != nil {
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("ParseName(%q) err = %v, want %v", tt.in, err, tt.wantErr)
			}
			continue
		}
		if err != nil || got != tt.want {
			t.Errorf("ParseName(%q) = %q, %v, want %q", tt.in, got, err, tt.want)
		}
	}
}

func TestNameString(t *testing.T) {
	if Name("").String() != "." {
		t.Error("root name should render as '.'")
	}
	if Name("example.com").String() != "example.com" {
		t.Error("name render mismatch")
	}
}

func TestNameLabels(t *testing.T) {
	got := MustParseName("www.example.com").Labels()
	want := []string{"www", "example", "com"}
	if len(got) != len(want) {
		t.Fatalf("Labels() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels() = %v, want %v", got, want)
		}
	}
	if Name("").Labels() != nil {
		t.Error("root Labels() should be nil")
	}
}

func TestNameParent(t *testing.T) {
	tests := []struct{ in, want Name }{
		{"www.example.com", "example.com"},
		{"example.com", "com"},
		{"com", ""},
		{"", ""},
	}
	for _, tt := range tests {
		if got := tt.in.Parent(); got != tt.want {
			t.Errorf("%q.Parent() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestNameChild(t *testing.T) {
	if got := Name("example.com").Child("WWW"); got != "www.example.com" {
		t.Errorf("Child = %q", got)
	}
	if got := Name("").Child("com"); got != "com" {
		t.Errorf("root Child = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Child with dotted label did not panic")
		}
	}()
	Name("example.com").Child("a.b")
}

func TestIsSubdomainOf(t *testing.T) {
	tests := []struct {
		name, zone Name
		want       bool
	}{
		{"www.example.com", "example.com", true},
		{"example.com", "example.com", true},
		{"example.com", "com", true},
		{"anything", "", true},
		{"notexample.com", "example.com", false},
		{"com", "example.com", false},
	}
	for _, tt := range tests {
		if got := tt.name.IsSubdomainOf(tt.zone); got != tt.want {
			t.Errorf("%q.IsSubdomainOf(%q) = %v, want %v", tt.name, tt.zone, got, tt.want)
		}
	}
}

func TestContainsSubstring(t *testing.T) {
	n := MustParseName("kate.ns.cloudflare.com")
	if !n.ContainsSubstring("cloudflare") {
		t.Error("expected cloudflare substring match")
	}
	if !n.ContainsSubstring("CloudFlare") {
		t.Error("substring match should be case-insensitive")
	}
	if n.ContainsSubstring("incapdns") {
		t.Error("unexpected incapdns match")
	}
}
