package dnsmsg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"time"
)

// Decode errors.
var (
	ErrShortMessage  = errors.New("dnsmsg: message truncated")
	ErrBadPointer    = errors.New("dnsmsg: invalid compression pointer")
	ErrPointerLoop   = errors.New("dnsmsg: compression pointer loop")
	ErrTrailingBytes = errors.New("dnsmsg: trailing bytes after message")
	ErrUnsupportedRR = errors.New("dnsmsg: unsupported record type")
	ErrRDataLength   = errors.New("dnsmsg: rdata length mismatch")
)

type decoder struct {
	buf []byte
	pos int
}

// Decode parses a wire-format DNS message. Records with unsupported types
// yield ErrUnsupportedRR: the simulated Internet never emits them, so an
// appearance is a corruption worth surfacing rather than skipping.
func Decode(b []byte) (*Message, error) {
	d := &decoder{buf: b}
	m := &Message{}

	id, err := d.u16()
	if err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	flags, err := d.u16()
	if err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	m.Header = Header{
		ID:                 id,
		Response:           flags&(1<<15) != 0,
		Opcode:             Opcode((flags >> 11) & 0xF),
		Authoritative:      flags&(1<<10) != 0,
		Truncated:          flags&(1<<9) != 0,
		RecursionDesired:   flags&(1<<8) != 0,
		RecursionAvailable: flags&(1<<7) != 0,
		RCode:              RCode(flags & 0xF),
	}
	counts := make([]uint16, 4)
	for i := range counts {
		if counts[i], err = d.u16(); err != nil {
			return nil, fmt.Errorf("header counts: %w", err)
		}
	}

	for i := 0; i < int(counts[0]); i++ {
		q, err := d.question()
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		m.Questions = append(m.Questions, q)
	}
	sections := []*[]RR{&m.Answers, &m.Authority, &m.Additional}
	names := []string{"answer", "authority", "additional"}
	for s, dst := range sections {
		for i := 0; i < int(counts[s+1]); i++ {
			rr, err := d.rr()
			if err != nil {
				return nil, fmt.Errorf("%s %d: %w", names[s], i, err)
			}
			*dst = append(*dst, rr)
		}
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("%d bytes: %w", len(d.buf)-d.pos, ErrTrailingBytes)
	}
	return m, nil
}

func (d *decoder) u8() (uint8, error) {
	if d.pos+1 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := d.buf[d.pos]
	d.pos++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if d.pos+2 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := binary.BigEndian.Uint16(d.buf[d.pos:])
	d.pos += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.pos+4 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := binary.BigEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) take(n int) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.buf) {
		return nil, ErrShortMessage
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

// name reads a possibly-compressed name starting at the current position.
func (d *decoder) name() (Name, error) {
	labels, next, err := readName(d.buf, d.pos)
	if err != nil {
		return "", err
	}
	d.pos = next
	joined := strings.Join(labels, ".")
	return ParseName(joined)
}

// readName walks labels and compression pointers from off, returning the
// labels and the offset just past the name's in-place representation.
func readName(buf []byte, off int) (labels []string, next int, err error) {
	const maxHops = 64 // more pointer hops than any legal message needs
	hops := 0
	next = -1
	for {
		if off >= len(buf) {
			return nil, 0, ErrShortMessage
		}
		b := buf[off]
		switch {
		case b == 0:
			if next < 0 {
				next = off + 1
			}
			return labels, next, nil
		case b&0xC0 == 0xC0:
			if off+2 > len(buf) {
				return nil, 0, ErrShortMessage
			}
			ptr := int(binary.BigEndian.Uint16(buf[off:]) & 0x3FFF)
			if next < 0 {
				next = off + 2
			}
			if ptr >= off {
				return nil, 0, fmt.Errorf("pointer to %d at %d: %w", ptr, off, ErrBadPointer)
			}
			hops++
			if hops > maxHops {
				return nil, 0, ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return nil, 0, fmt.Errorf("label tag %#x: %w", b, ErrBadPointer)
		default:
			l := int(b)
			if off+1+l > len(buf) {
				return nil, 0, ErrShortMessage
			}
			labels = append(labels, string(buf[off+1:off+1+l]))
			off += 1 + l
		}
	}
}

func (d *decoder) question() (Question, error) {
	n, err := d.name()
	if err != nil {
		return Question{}, err
	}
	t, err := d.u16()
	if err != nil {
		return Question{}, err
	}
	c, err := d.u16()
	if err != nil {
		return Question{}, err
	}
	return Question{Name: n, Type: Type(t), Class: Class(c)}, nil
}

func (d *decoder) rr() (RR, error) {
	name, err := d.name()
	if err != nil {
		return RR{}, err
	}
	t, err := d.u16()
	if err != nil {
		return RR{}, err
	}
	class, err := d.u16()
	if err != nil {
		return RR{}, err
	}
	ttl, err := d.u32()
	if err != nil {
		return RR{}, err
	}
	rdlen, err := d.u16()
	if err != nil {
		return RR{}, err
	}
	end := d.pos + int(rdlen)
	if end > len(d.buf) {
		return RR{}, ErrShortMessage
	}

	var data RData
	switch Type(t) {
	case TypeA:
		raw, err := d.take(4)
		if err != nil {
			return RR{}, err
		}
		data = AData{Addr: netip.AddrFrom4([4]byte(raw))}
	case TypeNS:
		host, err := d.name()
		if err != nil {
			return RR{}, err
		}
		data = NSData{Host: host}
	case TypeCNAME:
		target, err := d.name()
		if err != nil {
			return RR{}, err
		}
		data = CNAMEData{Target: target}
	case TypeSOA:
		var soa SOAData
		if soa.MName, err = d.name(); err != nil {
			return RR{}, err
		}
		if soa.RName, err = d.name(); err != nil {
			return RR{}, err
		}
		for _, p := range []*uint32{&soa.Serial, &soa.Refresh, &soa.Retry, &soa.Expire, &soa.Minimum} {
			if *p, err = d.u32(); err != nil {
				return RR{}, err
			}
		}
		data = soa
	case TypeMX:
		pref, err := d.u16()
		if err != nil {
			return RR{}, err
		}
		host, err := d.name()
		if err != nil {
			return RR{}, err
		}
		data = MXData{Preference: pref, Host: host}
	case TypeTXT:
		var txt TXTData
		for d.pos < end {
			l, err := d.u8()
			if err != nil {
				return RR{}, err
			}
			s, err := d.take(int(l))
			if err != nil {
				return RR{}, err
			}
			txt.Strings = append(txt.Strings, string(s))
		}
		data = txt
	case TypeAAAA:
		raw, err := d.take(16)
		if err != nil {
			return RR{}, err
		}
		data = AAAAData{Addr: netip.AddrFrom16([16]byte(raw))}
	default:
		return RR{}, fmt.Errorf("type %s: %w", Type(t), ErrUnsupportedRR)
	}

	if d.pos != end {
		return RR{}, fmt.Errorf("%s at %s: %w", Type(t), name, ErrRDataLength)
	}
	// RFC 2181 §8: a TTL with the most significant bit set is treated as
	// zero. Clamping here keeps decoding canonical (decode∘encode is the
	// identity on decoded messages).
	if ttl > maxTTLSeconds {
		ttl = 0
	}
	return RR{
		Name:  name,
		Class: Class(class),
		TTL:   time.Duration(ttl) * time.Second,
		Data:  data,
	}, nil
}
