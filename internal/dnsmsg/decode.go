package dnsmsg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"
)

// Decode errors.
var (
	ErrShortMessage  = errors.New("dnsmsg: message truncated")
	ErrBadPointer    = errors.New("dnsmsg: invalid compression pointer")
	ErrPointerLoop   = errors.New("dnsmsg: compression pointer loop")
	ErrTrailingBytes = errors.New("dnsmsg: trailing bytes after message")
	ErrUnsupportedRR = errors.New("dnsmsg: unsupported record type")
	ErrRDataLength   = errors.New("dnsmsg: rdata length mismatch")
)

// maxInternedNames caps a Decoder's name-intern table. The simulated
// Internet's name universe is bounded, so a campaign decoder never gets
// near the cap; it exists so adversarial input (the fuzzer) cannot grow
// one decoder without bound.
const maxInternedNames = 1 << 16

// Decoder parses wire-format messages, reusing scratch buffers and an
// intern table of previously seen names across calls. A zero Decoder is
// ready to use; it is not safe for concurrent use (pool one per goroutine
// with AcquireDecoder/ReleaseDecoder).
//
// Interning is what makes steady-state decoding allocation-free: a
// resolver decodes the same owner names, CNAME targets, and NS hostnames
// millions of times per campaign, and each distinct name is materialized
// as a Go string exactly once per decoder.
type Decoder struct {
	buf []byte
	pos int

	names   map[string]Name
	scratch []byte

	// Pre-boxed RData values, keyed by content. Storing a concrete rdata
	// struct in the RData interface allocates; a campaign decodes the same
	// few addresses and targets endlessly, so each distinct value is boxed
	// once and reused. SOA/MX/TXT are rare enough to box per record.
	aData     map[netip.Addr]RData
	nsData    map[Name]RData
	cnameData map[Name]RData
}

// decoderPool recycles decoders (and their intern tables) across queries.
var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// AcquireDecoder returns a pooled decoder.
func AcquireDecoder() *Decoder { return decoderPool.Get().(*Decoder) }

// ReleaseDecoder returns d to the pool.
func ReleaseDecoder(d *Decoder) { decoderPool.Put(d) }

// Decode parses a wire-format DNS message. Records with unsupported types
// yield ErrUnsupportedRR: the simulated Internet never emits them, so an
// appearance is a corruption worth surfacing rather than skipping.
func Decode(b []byte) (*Message, error) {
	d := AcquireDecoder()
	defer ReleaseDecoder(d)
	m := &Message{}
	if err := d.DecodeInto(b, m); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeInto parses b into m, reusing m's section slices (they are
// truncated and re-filled, so a long-lived caller-owned Message stops
// allocating once its slices have grown to the working-set size). On error
// m holds partially decoded content and must not be used.
func (d *Decoder) DecodeInto(b []byte, m *Message) error {
	d.buf, d.pos = b, 0
	m.Questions = m.Questions[:0]
	m.Answers = m.Answers[:0]
	m.Authority = m.Authority[:0]
	m.Additional = m.Additional[:0]

	id, err := d.u16()
	if err != nil {
		return fmt.Errorf("header: %w", err)
	}
	flags, err := d.u16()
	if err != nil {
		return fmt.Errorf("header: %w", err)
	}
	m.Header = Header{
		ID:                 id,
		Response:           flags&(1<<15) != 0,
		Opcode:             Opcode((flags >> 11) & 0xF),
		Authoritative:      flags&(1<<10) != 0,
		Truncated:          flags&(1<<9) != 0,
		RecursionDesired:   flags&(1<<8) != 0,
		RecursionAvailable: flags&(1<<7) != 0,
		RCode:              RCode(flags & 0xF),
	}
	var counts [4]uint16
	for i := range counts {
		if counts[i], err = d.u16(); err != nil {
			return fmt.Errorf("header counts: %w", err)
		}
	}

	for i := 0; i < int(counts[0]); i++ {
		q, err := d.question()
		if err != nil {
			return fmt.Errorf("question %d: %w", i, err)
		}
		m.Questions = append(m.Questions, q)
	}
	sections := [3]*[]RR{&m.Answers, &m.Authority, &m.Additional}
	names := [3]string{"answer", "authority", "additional"}
	for s, dst := range sections {
		for i := 0; i < int(counts[s+1]); i++ {
			rr, err := d.rr()
			if err != nil {
				return fmt.Errorf("%s %d: %w", names[s], i, err)
			}
			*dst = append(*dst, rr)
		}
	}
	if d.pos != len(d.buf) {
		return fmt.Errorf("%d bytes: %w", len(d.buf)-d.pos, ErrTrailingBytes)
	}
	return nil
}

func (d *Decoder) u8() (uint8, error) {
	if d.pos+1 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := d.buf[d.pos]
	d.pos++
	return v, nil
}

func (d *Decoder) u16() (uint16, error) {
	if d.pos+2 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := binary.BigEndian.Uint16(d.buf[d.pos:])
	d.pos += 2
	return v, nil
}

func (d *Decoder) u32() (uint32, error) {
	if d.pos+4 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := binary.BigEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *Decoder) take(n int) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.buf) {
		return nil, ErrShortMessage
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

// name reads a possibly-compressed name starting at the current position.
// The raw labels are gathered into the decoder's scratch buffer (dotted,
// as ParseName would see them), normalized, then interned so repeated
// names cost no allocation.
func (d *Decoder) name() (Name, error) {
	next, err := d.readNameScratch(d.pos)
	if err != nil {
		return "", err
	}
	d.pos = next

	s := d.scratch
	// ParseName semantics: one trailing dot is accepted and trimmed. A
	// dotted join of wire labels ends with '.' only when the final label
	// itself does.
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	if len(s) == 0 {
		return "", nil
	}

	// Fast path: pure-ASCII names are normalized in place and validated in
	// one scan. Anything with high bytes falls back to ParseName, whose
	// Unicode-aware lowercasing is the historical behaviour.
	ascii := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 {
			ascii = false
			break
		}
		if c >= 'A' && c <= 'Z' {
			s[i] = c + ('a' - 'A')
		}
	}
	if !ascii {
		return ParseName(string(s))
	}
	if len(s) > 253 {
		return "", fmt.Errorf("parsing %q: %w", s, ErrNameTooLong)
	}
	labelLen := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if labelLen == 0 {
				return "", fmt.Errorf("parsing %q: %w", s, ErrEmptyLabel)
			}
			if labelLen > 63 {
				return "", fmt.Errorf("parsing %q: %w", s, ErrLabelTooLong)
			}
			labelLen = 0
			continue
		}
		labelLen++
	}
	return d.intern(s), nil
}

// intern returns the canonical Name for the normalized bytes in s,
// allocating the backing string only on first sight.
func (d *Decoder) intern(s []byte) Name {
	if n, ok := d.names[string(s)]; ok {
		return n
	}
	if d.names == nil || len(d.names) >= maxInternedNames {
		d.names = make(map[string]Name)
	}
	n := Name(s)
	d.names[string(n)] = n
	return n
}

// readNameScratch walks labels and compression pointers from off into
// d.scratch as a dotted string, returning the offset just past the name's
// in-place representation.
func (d *Decoder) readNameScratch(off int) (next int, err error) {
	const maxHops = 64 // more pointer hops than any legal message needs
	buf := d.buf
	d.scratch = d.scratch[:0]
	hops := 0
	next = -1
	for {
		if off >= len(buf) {
			return 0, ErrShortMessage
		}
		b := buf[off]
		switch {
		case b == 0:
			if next < 0 {
				next = off + 1
			}
			return next, nil
		case b&0xC0 == 0xC0:
			if off+2 > len(buf) {
				return 0, ErrShortMessage
			}
			ptr := int(binary.BigEndian.Uint16(buf[off:]) & 0x3FFF)
			if next < 0 {
				next = off + 2
			}
			if ptr >= off {
				return 0, fmt.Errorf("pointer to %d at %d: %w", ptr, off, ErrBadPointer)
			}
			hops++
			if hops > maxHops {
				return 0, ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return 0, fmt.Errorf("label tag %#x: %w", b, ErrBadPointer)
		default:
			l := int(b)
			if off+1+l > len(buf) {
				return 0, ErrShortMessage
			}
			if len(d.scratch) > 0 {
				d.scratch = append(d.scratch, '.')
			}
			d.scratch = append(d.scratch, buf[off+1:off+1+l]...)
			off += 1 + l
		}
	}
}

func (d *Decoder) question() (Question, error) {
	n, err := d.name()
	if err != nil {
		return Question{}, err
	}
	t, err := d.u16()
	if err != nil {
		return Question{}, err
	}
	c, err := d.u16()
	if err != nil {
		return Question{}, err
	}
	return Question{Name: n, Type: Type(t), Class: Class(c)}, nil
}

func (d *Decoder) rr() (RR, error) {
	name, err := d.name()
	if err != nil {
		return RR{}, err
	}
	t, err := d.u16()
	if err != nil {
		return RR{}, err
	}
	class, err := d.u16()
	if err != nil {
		return RR{}, err
	}
	ttl, err := d.u32()
	if err != nil {
		return RR{}, err
	}
	rdlen, err := d.u16()
	if err != nil {
		return RR{}, err
	}
	end := d.pos + int(rdlen)
	if end > len(d.buf) {
		return RR{}, ErrShortMessage
	}

	var data RData
	switch Type(t) {
	case TypeA:
		raw, err := d.take(4)
		if err != nil {
			return RR{}, err
		}
		addr := netip.AddrFrom4([4]byte(raw))
		if v, ok := d.aData[addr]; ok {
			data = v
		} else {
			if d.aData == nil || len(d.aData) >= maxInternedNames {
				d.aData = make(map[netip.Addr]RData)
			}
			data = AData{Addr: addr}
			d.aData[addr] = data
		}
	case TypeNS:
		host, err := d.name()
		if err != nil {
			return RR{}, err
		}
		if v, ok := d.nsData[host]; ok {
			data = v
		} else {
			if d.nsData == nil || len(d.nsData) >= maxInternedNames {
				d.nsData = make(map[Name]RData)
			}
			data = NSData{Host: host}
			d.nsData[host] = data
		}
	case TypeCNAME:
		target, err := d.name()
		if err != nil {
			return RR{}, err
		}
		if v, ok := d.cnameData[target]; ok {
			data = v
		} else {
			if d.cnameData == nil || len(d.cnameData) >= maxInternedNames {
				d.cnameData = make(map[Name]RData)
			}
			data = CNAMEData{Target: target}
			d.cnameData[target] = data
		}
	case TypeSOA:
		var soa SOAData
		if soa.MName, err = d.name(); err != nil {
			return RR{}, err
		}
		if soa.RName, err = d.name(); err != nil {
			return RR{}, err
		}
		for _, p := range []*uint32{&soa.Serial, &soa.Refresh, &soa.Retry, &soa.Expire, &soa.Minimum} {
			if *p, err = d.u32(); err != nil {
				return RR{}, err
			}
		}
		data = soa
	case TypeMX:
		pref, err := d.u16()
		if err != nil {
			return RR{}, err
		}
		host, err := d.name()
		if err != nil {
			return RR{}, err
		}
		data = MXData{Preference: pref, Host: host}
	case TypeTXT:
		var txt TXTData
		for d.pos < end {
			l, err := d.u8()
			if err != nil {
				return RR{}, err
			}
			s, err := d.take(int(l))
			if err != nil {
				return RR{}, err
			}
			txt.Strings = append(txt.Strings, string(s))
		}
		data = txt
	case TypeAAAA:
		raw, err := d.take(16)
		if err != nil {
			return RR{}, err
		}
		addr := netip.AddrFrom16([16]byte(raw))
		if v, ok := d.aData[addr]; ok {
			data = v
		} else {
			if d.aData == nil || len(d.aData) >= maxInternedNames {
				d.aData = make(map[netip.Addr]RData)
			}
			data = AAAAData{Addr: addr}
			d.aData[addr] = data
		}
	default:
		return RR{}, fmt.Errorf("type %s: %w", Type(t), ErrUnsupportedRR)
	}

	if d.pos != end {
		return RR{}, fmt.Errorf("%s at %s: %w", Type(t), name, ErrRDataLength)
	}
	// RFC 2181 §8: a TTL with the most significant bit set is treated as
	// zero. Clamping here keeps decoding canonical (decode∘encode is the
	// identity on decoded messages).
	if ttl > maxTTLSeconds {
		ttl = 0
	}
	return RR{
		Name:  name,
		Class: Class(class),
		TTL:   time.Duration(ttl) * time.Second,
		Data:  data,
	}, nil
}
