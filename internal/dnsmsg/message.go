package dnsmsg

import (
	"fmt"
	"strings"
)

// Opcode is a DNS operation code.
type Opcode uint8

// OpcodeQuery is the only opcode the simulated Internet uses.
const OpcodeQuery Opcode = 0

// RCode is a DNS response code.
type RCode uint8

// Response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String implements fmt.Stringer.
func (rc RCode) String() string {
	switch rc {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(rc))
	}
}

// Header is the fixed 12-octet DNS message header, with the flag word
// unpacked into fields.
type Header struct {
	ID                 uint16
	Response           bool // QR
	Opcode             Opcode
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	RCode              RCode
}

// Question is a DNS question section entry.
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String implements fmt.Stringer.
func (q Question) String() string {
	return fmt.Sprintf("%s IN %s", q.Name, q.Type)
}

// Message is a full DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a standard recursive-desired query for (name, type).
func NewQuery(id uint16, name Name, qtype Type) *Message {
	return &Message{
		Header: Header{
			ID:               id,
			Opcode:           OpcodeQuery,
			RecursionDesired: true,
		},
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}

// NewResponse builds a response skeleton echoing the query's ID, question,
// and RD bit.
func NewResponse(query *Message, rcode RCode) *Message {
	resp := &Message{
		Header: Header{
			ID:               query.Header.ID,
			Response:         true,
			Opcode:           query.Header.Opcode,
			RecursionDesired: query.Header.RecursionDesired,
			RCode:            rcode,
		},
	}
	resp.Questions = append(resp.Questions, query.Questions...)
	return resp
}

// Clone returns a deep-enough copy of m: the header and fresh section
// slices. RRs themselves are value types (their RData implementations are
// immutable), so element sharing is safe.
func (m *Message) Clone() *Message {
	out := &Message{Header: m.Header}
	if len(m.Questions) > 0 {
		out.Questions = append([]Question(nil), m.Questions...)
	}
	if len(m.Answers) > 0 {
		out.Answers = append([]RR(nil), m.Answers...)
	}
	if len(m.Authority) > 0 {
		out.Authority = append([]RR(nil), m.Authority...)
	}
	if len(m.Additional) > 0 {
		out.Additional = append([]RR(nil), m.Additional...)
	}
	return out
}

// Question returns the first question, or a zero Question when absent.
func (m *Message) Question() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// AnswersOfType returns the answer records of the given type.
func (m *Message) AnswersOfType(t Type) []RR {
	var out []RR
	for _, rr := range m.Answers {
		if rr.Type() == t {
			out = append(out, rr)
		}
	}
	return out
}

// String renders a dig-like summary, useful in test failures.
func (m *Message) String() string {
	var b strings.Builder
	kind := "query"
	if m.Header.Response {
		kind = "response"
	}
	fmt.Fprintf(&b, "%s id=%d rcode=%s aa=%v", kind, m.Header.ID, m.Header.RCode, m.Header.Authoritative)
	for _, q := range m.Questions {
		fmt.Fprintf(&b, "\n;; %s", q)
	}
	for _, rr := range m.Answers {
		fmt.Fprintf(&b, "\nan: %s", rr)
	}
	for _, rr := range m.Authority {
		fmt.Fprintf(&b, "\nns: %s", rr)
	}
	for _, rr := range m.Additional {
		fmt.Fprintf(&b, "\nad: %s", rr)
	}
	return b.String()
}
