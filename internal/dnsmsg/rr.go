package dnsmsg

import (
	"fmt"
	"net/netip"
	"strings"
	"time"
)

// Type is a DNS record type code.
type Type uint16

// Record types supported by the simulated Internet.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class code. Only IN is used.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RData is the type-specific payload of a resource record.
type RData interface {
	// Type returns the record type this data belongs to.
	Type() Type
	// dataString renders the presentation form of the payload.
	dataString() string
}

// AData is an IPv4 address record payload.
type AData struct{ Addr netip.Addr }

// Type implements RData.
func (AData) Type() Type           { return TypeA }
func (d AData) dataString() string { return d.Addr.String() }

// NSData names an authoritative nameserver.
type NSData struct{ Host Name }

// Type implements RData.
func (NSData) Type() Type           { return TypeNS }
func (d NSData) dataString() string { return d.Host.String() }

// CNAMEData aliases the owner name to Target.
type CNAMEData struct{ Target Name }

// Type implements RData.
func (CNAMEData) Type() Type           { return TypeCNAME }
func (d CNAMEData) dataString() string { return d.Target.String() }

// SOAData is the start-of-authority payload.
type SOAData struct {
	MName   Name
	RName   Name
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Type implements RData.
func (SOAData) Type() Type { return TypeSOA }
func (d SOAData) dataString() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		d.MName, d.RName, d.Serial, d.Refresh, d.Retry, d.Expire, d.Minimum)
}

// MXData is a mail-exchanger payload.
type MXData struct {
	Preference uint16
	Host       Name
}

// Type implements RData.
func (MXData) Type() Type           { return TypeMX }
func (d MXData) dataString() string { return fmt.Sprintf("%d %s", d.Preference, d.Host) }

// TXTData carries free-form character strings.
type TXTData struct{ Strings []string }

// Type implements RData.
func (TXTData) Type() Type { return TypeTXT }
func (d TXTData) dataString() string {
	quoted := make([]string, len(d.Strings))
	for i, s := range d.Strings {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(quoted, " ")
}

// AAAAData is an IPv6 address record payload.
type AAAAData struct{ Addr netip.Addr }

// Type implements RData.
func (AAAAData) Type() Type           { return TypeAAAA }
func (d AAAAData) dataString() string { return d.Addr.String() }

var (
	_ RData = AData{}
	_ RData = NSData{}
	_ RData = CNAMEData{}
	_ RData = SOAData{}
	_ RData = MXData{}
	_ RData = TXTData{}
	_ RData = AAAAData{}
)

// RR is a resource record.
type RR struct {
	Name  Name
	Class Class
	TTL   time.Duration
	Data  RData
}

// Type returns the record's type, derived from its payload.
func (r RR) Type() Type {
	if r.Data == nil {
		return 0
	}
	return r.Data.Type()
}

// String renders the record in zone-file presentation form.
func (r RR) String() string {
	return fmt.Sprintf("%s %d IN %s %s",
		r.Name, int(r.TTL/time.Second), r.Type(), r.Data.dataString())
}

// NewA builds an A record.
func NewA(name Name, ttl time.Duration, addr netip.Addr) RR {
	return RR{Name: name, Class: ClassIN, TTL: ttl, Data: AData{Addr: addr}}
}

// NewNS builds an NS record.
func NewNS(name Name, ttl time.Duration, host Name) RR {
	return RR{Name: name, Class: ClassIN, TTL: ttl, Data: NSData{Host: host}}
}

// NewCNAME builds a CNAME record.
func NewCNAME(name Name, ttl time.Duration, target Name) RR {
	return RR{Name: name, Class: ClassIN, TTL: ttl, Data: CNAMEData{Target: target}}
}

// NewMX builds an MX record.
func NewMX(name Name, ttl time.Duration, pref uint16, host Name) RR {
	return RR{Name: name, Class: ClassIN, TTL: ttl, Data: MXData{Preference: pref, Host: host}}
}

// NewTXT builds a TXT record.
func NewTXT(name Name, ttl time.Duration, strs ...string) RR {
	return RR{Name: name, Class: ClassIN, TTL: ttl, Data: TXTData{Strings: strs}}
}

// NewSOA builds an SOA record with conventional timer values.
func NewSOA(name Name, ttl time.Duration, mname, rname Name, serial uint32) RR {
	return RR{Name: name, Class: ClassIN, TTL: ttl, Data: SOAData{
		MName:   mname,
		RName:   rname,
		Serial:  serial,
		Refresh: 7200,
		Retry:   3600,
		Expire:  1209600,
		Minimum: 300,
	}}
}
