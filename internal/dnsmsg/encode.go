package dnsmsg

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"time"
)

// maxTTLSeconds caps encoded TTLs at the RFC 2181 maximum.
const maxTTLSeconds = 1<<31 - 1

// Encoder serializes messages with RFC 1035 name compression, reusing its
// output buffer and compression table across calls. A zero Encoder is
// ready to use; it is not safe for concurrent use (pool one per goroutine
// with AcquireEncoder/ReleaseEncoder).
type Encoder struct {
	buf []byte
	// base is the index in buf where the current message starts; name
	// compression offsets are message-relative (EncodeAppend can target a
	// non-empty caller buffer).
	base int
	// offsets remembers where each (sub)name was written so later
	// occurrences can emit a compression pointer.
	offsets map[Name]int

	// Query scratch for alloc-free query encoding.
	qmsg Message
	qs   [1]Question
}

// encoderPool recycles encoders (buffer + compression table) across the
// send-heavy paths: a campaign encodes millions of queries, all of which
// fit the same small buffer.
var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// AcquireEncoder returns a pooled encoder. Release it with ReleaseEncoder
// when the encoded bytes are no longer referenced.
func AcquireEncoder() *Encoder { return encoderPool.Get().(*Encoder) }

// ReleaseEncoder returns e to the pool.
func ReleaseEncoder(e *Encoder) { encoderPool.Put(e) }

// reset prepares the encoder for a new message.
func (e *Encoder) reset() {
	e.buf = e.buf[:0]
	e.base = 0
	if e.offsets == nil {
		e.offsets = make(map[Name]int)
	} else {
		clear(e.offsets)
	}
}

// Encode serializes m into the encoder's internal buffer and returns it.
// The returned slice is valid only until the encoder's next call (copy it
// to retain).
func (e *Encoder) Encode(m *Message) ([]byte, error) {
	e.reset()
	return e.encode(m)
}

// EncodeAppend serializes m appended to dst (which may be nil) and returns
// the extended slice. The encoder keeps no reference to dst afterwards;
// its own internal buffer is untouched.
func (e *Encoder) EncodeAppend(dst []byte, m *Message) ([]byte, error) {
	saved := e.buf
	e.buf = dst
	e.base = len(dst)
	if e.offsets == nil {
		e.offsets = make(map[Name]int)
	} else {
		clear(e.offsets)
	}
	out, err := e.encode(m)
	e.buf = saved
	e.base = 0
	return out, err
}

func (e *Encoder) encode(m *Message) ([]byte, error) {
	var flags uint16
	if m.Header.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.Opcode&0xF) << 11
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.Truncated {
		flags |= 1 << 9
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.Header.RCode & 0xF)

	e.u16(m.Header.ID)
	e.u16(flags)
	e.u16(uint16(len(m.Questions)))
	e.u16(uint16(len(m.Answers)))
	e.u16(uint16(len(m.Authority)))
	e.u16(uint16(len(m.Additional)))

	for _, q := range m.Questions {
		e.name(q.Name)
		e.u16(uint16(q.Type))
		e.u16(uint16(q.Class))
	}
	for _, section := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range section {
			if err := e.rr(rr); err != nil {
				return nil, err
			}
		}
	}
	return e.buf, nil
}

// EncodeQuery encodes a standard recursion-desired query for (name, qtype)
// without building a Message, reusing the encoder's scratch. The returned
// slice is valid only until the encoder's next call.
func (e *Encoder) EncodeQuery(id uint16, name Name, qtype Type) []byte {
	e.qs[0] = Question{Name: name, Type: qtype, Class: ClassIN}
	e.qmsg = Message{
		Header: Header{
			ID:               id,
			Opcode:           OpcodeQuery,
			RecursionDesired: true,
		},
		Questions: e.qs[:1],
	}
	// A query has no RRs, so Encode cannot fail.
	b, err := e.Encode(&e.qmsg)
	if err != nil {
		panic(fmt.Sprintf("dnsmsg: %v", err))
	}
	return b
}

// Encode serializes m to wire format in a freshly allocated buffer.
func Encode(m *Message) ([]byte, error) {
	e := AcquireEncoder()
	defer ReleaseEncoder(e)
	b, err := e.Encode(m)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

// MustEncode is Encode but panics on error; for messages built from
// validated parts.
func MustEncode(m *Message) []byte {
	b, err := Encode(m)
	if err != nil {
		panic(fmt.Sprintf("dnsmsg: %v", err))
	}
	return b
}

func (e *Encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *Encoder) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *Encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// name writes a possibly-compressed domain name.
func (e *Encoder) name(n Name) {
	for !n.IsRoot() {
		if off, ok := e.offsets[n]; ok && off <= 0x3FFF {
			e.u16(0xC000 | uint16(off))
			return
		}
		if off := len(e.buf) - e.base; off <= 0x3FFF {
			e.offsets[n] = off
		}
		label := string(n)
		if i := strings.IndexByte(label, '.'); i >= 0 {
			label = label[:i]
		}
		e.u8(uint8(len(label)))
		e.buf = append(e.buf, label...)
		n = n.Parent()
	}
	e.u8(0)
}

func (e *Encoder) rr(rr RR) error {
	if rr.Data == nil {
		return fmt.Errorf("encoding %s: nil rdata", rr.Name)
	}
	e.name(rr.Name)
	e.u16(uint16(rr.Type()))
	e.u16(uint16(rr.Class))
	ttl := int64(rr.TTL / time.Second)
	if ttl < 0 {
		ttl = 0
	}
	if ttl > maxTTLSeconds {
		ttl = maxTTLSeconds
	}
	e.u32(uint32(ttl))

	// Reserve RDLENGTH and patch after writing RDATA. Compression pointers
	// inside RDATA remain valid because the target offsets precede them.
	lenAt := len(e.buf)
	e.u16(0)
	start := len(e.buf)

	switch d := rr.Data.(type) {
	case AData:
		if !d.Addr.Is4() {
			return fmt.Errorf("encoding %s: A record with non-IPv4 address %v", rr.Name, d.Addr)
		}
		a4 := d.Addr.As4()
		e.buf = append(e.buf, a4[:]...)
	case NSData:
		e.name(d.Host)
	case CNAMEData:
		e.name(d.Target)
	case SOAData:
		e.name(d.MName)
		e.name(d.RName)
		e.u32(d.Serial)
		e.u32(d.Refresh)
		e.u32(d.Retry)
		e.u32(d.Expire)
		e.u32(d.Minimum)
	case MXData:
		e.u16(d.Preference)
		e.name(d.Host)
	case TXTData:
		for _, s := range d.Strings {
			if len(s) > 255 {
				return fmt.Errorf("encoding %s: TXT string exceeds 255 octets", rr.Name)
			}
			e.u8(uint8(len(s)))
			e.buf = append(e.buf, s...)
		}
	case AAAAData:
		if !d.Addr.Is6() || d.Addr.Is4() {
			return fmt.Errorf("encoding %s: AAAA record with non-IPv6 address %v", rr.Name, d.Addr)
		}
		a16 := d.Addr.As16()
		e.buf = append(e.buf, a16[:]...)
	default:
		return fmt.Errorf("encoding %s: unsupported rdata type %T", rr.Name, rr.Data)
	}

	rdlen := len(e.buf) - start
	if rdlen > 0xFFFF {
		return fmt.Errorf("encoding %s: rdata length %d overflows", rr.Name, rdlen)
	}
	binary.BigEndian.PutUint16(e.buf[lenAt:], uint16(rdlen))
	return nil
}
