package simtime

import (
	"sync"
	"testing"
	"time"
)

func TestSimulatedStartsAtEpoch(t *testing.T) {
	c := NewSimulated()
	if got := c.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", got, Epoch)
	}
}

func TestSimulatedAdvance(t *testing.T) {
	c := NewSimulated()
	c.Advance(90 * time.Minute)
	want := Epoch.Add(90 * time.Minute)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSimulatedAdvanceDays(t *testing.T) {
	c := NewSimulated()
	c.AdvanceDays(3)
	want := Epoch.Add(72 * time.Hour)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSimulatedAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewSimulated().Advance(-time.Second)
}

func TestSimulatedSetBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(before now) did not panic")
		}
	}()
	c := NewSimulated()
	c.Set(Epoch.Add(-time.Hour))
}

func TestSimulatedSetForward(t *testing.T) {
	c := NewSimulated()
	target := Epoch.Add(7 * 24 * time.Hour)
	c.Set(target)
	if got := c.Now(); !got.Equal(target) {
		t.Fatalf("Now() = %v, want %v", got, target)
	}
}

func TestDay(t *testing.T) {
	tests := []struct {
		name    string
		advance time.Duration
		want    int
	}{
		{"epoch", 0, 0},
		{"partial day", 23 * time.Hour, 0},
		{"exactly one day", 24 * time.Hour, 1},
		{"mid second day", 36 * time.Hour, 1},
		{"six weeks", 42 * 24 * time.Hour, 42},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := NewSimulated()
			c.Advance(tt.advance)
			if got := Day(c); got != tt.want {
				t.Fatalf("Day() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestRealClockClose(t *testing.T) {
	before := time.Now()
	got := Real{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestSimulatedConcurrentAdvance(t *testing.T) {
	c := NewSimulated()
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Advance(time.Minute)
			_ = c.Now()
		}()
	}
	wg.Wait()
	want := Epoch.Add(n * time.Minute)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("after %d concurrent advances Now() = %v, want %v", n, got, want)
	}
}
