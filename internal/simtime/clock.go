// Package simtime provides a controllable clock for the simulated Internet.
//
// Every component that needs time (DNS TTL expiry, purge schedulers, the
// daily measurement cadence) takes a Clock rather than calling time.Now
// directly, so experiments are deterministic and six simulated weeks run in
// milliseconds of wall time.
package simtime

import (
	"fmt"
	"sync"
	"time"
)

// Clock supplies the current time to simulation components.
type Clock interface {
	// Now returns the current simulation time.
	Now() time.Time
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

var _ Clock = Real{}

// Epoch is the default starting instant for simulated clocks. The concrete
// date is arbitrary; measurements report relative days and weeks.
var Epoch = time.Date(2017, time.September, 4, 0, 0, 0, 0, time.UTC)

// Simulated is a manually advanced Clock. The zero value is not usable; use
// NewSimulated. Simulated is safe for concurrent use.
type Simulated struct {
	mu  sync.RWMutex
	now time.Time
}

// NewSimulated returns a simulated clock starting at Epoch.
func NewSimulated() *Simulated { return NewSimulatedAt(Epoch) }

// NewSimulatedAt returns a simulated clock starting at the given instant.
func NewSimulatedAt(start time.Time) *Simulated {
	return &Simulated{now: start}
}

var _ Clock = (*Simulated)(nil)

// Now implements Clock.
func (c *Simulated) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Advance moves the clock forward by d. It panics if d is negative, because
// simulation time never flows backwards and a negative advance always
// indicates a bug in the caller.
func (c *Simulated) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: Advance by negative duration %v", d))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// AdvanceDays moves the clock forward by n 24-hour days.
func (c *Simulated) AdvanceDays(n int) {
	if n < 0 {
		panic(fmt.Sprintf("simtime: AdvanceDays by negative count %d", n))
	}
	c.Advance(time.Duration(n) * 24 * time.Hour)
}

// Set jumps the clock to the given instant. It panics if t is earlier than
// the current time.
func (c *Simulated) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		panic(fmt.Sprintf("simtime: Set to %v before current %v", t, c.now))
	}
	c.now = t
}

// Day returns the zero-based number of whole 24-hour days elapsed since
// Epoch at the clock's current time. Measurement runs use this as the
// snapshot index.
func Day(c Clock) int {
	return int(c.Now().Sub(Epoch) / (24 * time.Hour))
}
