// Package pdns is a passive-DNS archive: a historical record of which
// addresses a hostname has resolved to and when, as collected by sensors
// feeding databases like DNSDB or SecurityTrails.
//
// The "IP history" origin-exposure vector (paper Table I) queries such a
// database: a website that enabled DPS without changing its origin address
// is still findable at the address the archive saw before the migration.
package pdns

import (
	"net/netip"
	"sort"
	"sync"

	"rrdps/internal/dnsmsg"
)

// Observation is one (name, address) association with its observed span.
type Observation struct {
	Name dnsmsg.Name
	Addr netip.Addr
	// FirstDay / LastDay bound the days the association was observed
	// (inclusive).
	FirstDay int
	LastDay  int
}

// Archive stores observations. It is safe for concurrent use.
type Archive struct {
	mu      sync.RWMutex
	entries map[dnsmsg.Name]map[netip.Addr]*Observation
}

// NewArchive creates an empty archive.
func NewArchive() *Archive {
	return &Archive{entries: make(map[dnsmsg.Name]map[netip.Addr]*Observation)}
}

// Record ingests one observation of name resolving to addrs on day.
func (a *Archive) Record(day int, name dnsmsg.Name, addrs ...netip.Addr) {
	if len(addrs) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	byAddr, ok := a.entries[name]
	if !ok {
		byAddr = make(map[netip.Addr]*Observation)
		a.entries[name] = byAddr
	}
	for _, addr := range addrs {
		if obs, ok := byAddr[addr]; ok {
			if day < obs.FirstDay {
				obs.FirstDay = day
			}
			if day > obs.LastDay {
				obs.LastDay = day
			}
			continue
		}
		byAddr[addr] = &Observation{Name: name, Addr: addr, FirstDay: day, LastDay: day}
	}
}

// History returns every observation for name, most recent last (ordered by
// LastDay, then FirstDay, then address).
func (a *Archive) History(name dnsmsg.Name) []Observation {
	a.mu.RLock()
	defer a.mu.RUnlock()
	byAddr := a.entries[name]
	out := make([]Observation, 0, len(byAddr))
	for _, obs := range byAddr {
		out = append(out, *obs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LastDay != out[j].LastDay {
			return out[i].LastDay < out[j].LastDay
		}
		if out[i].FirstDay != out[j].FirstDay {
			return out[i].FirstDay < out[j].FirstDay
		}
		return out[i].Addr.Less(out[j].Addr)
	})
	return out
}

// AddrsBefore returns the distinct addresses observed for name strictly
// before day — the "what did this resolve to before the DPS migration"
// query.
func (a *Archive) AddrsBefore(name dnsmsg.Name, day int) []netip.Addr {
	var out []netip.Addr
	for _, obs := range a.History(name) {
		if obs.FirstDay < day {
			out = append(out, obs.Addr)
		}
	}
	return out
}

// Names returns every archived hostname, sorted.
func (a *Archive) Names() []dnsmsg.Name {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]dnsmsg.Name, 0, len(a.entries))
	for n := range a.entries {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of archived (name, addr) associations.
func (a *Archive) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	n := 0
	for _, byAddr := range a.entries {
		n += len(byAddr)
	}
	return n
}
