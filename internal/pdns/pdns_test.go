package pdns

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestRecordAndHistory(t *testing.T) {
	a := NewArchive()
	a.Record(1, "www.x.com", addr("10.0.0.1"))
	a.Record(3, "www.x.com", addr("10.0.0.1"))
	a.Record(5, "www.x.com", addr("10.0.0.2"))

	h := a.History("www.x.com")
	if len(h) != 2 {
		t.Fatalf("history = %+v", h)
	}
	if h[0].Addr != addr("10.0.0.1") || h[0].FirstDay != 1 || h[0].LastDay != 3 {
		t.Fatalf("first obs = %+v", h[0])
	}
	if h[1].Addr != addr("10.0.0.2") || h[1].FirstDay != 5 {
		t.Fatalf("second obs = %+v", h[1])
	}
}

func TestHistoryUnknownName(t *testing.T) {
	a := NewArchive()
	if h := a.History("nope.com"); len(h) != 0 {
		t.Fatalf("history = %v", h)
	}
}

func TestAddrsBefore(t *testing.T) {
	a := NewArchive()
	a.Record(2, "www.x.com", addr("10.0.0.1"))
	a.Record(10, "www.x.com", addr("10.0.0.2"))

	got := a.AddrsBefore("www.x.com", 5)
	if len(got) != 1 || got[0] != addr("10.0.0.1") {
		t.Fatalf("AddrsBefore(5) = %v", got)
	}
	got = a.AddrsBefore("www.x.com", 11)
	if len(got) != 2 {
		t.Fatalf("AddrsBefore(11) = %v", got)
	}
	if got := a.AddrsBefore("www.x.com", 1); len(got) != 0 {
		t.Fatalf("AddrsBefore(1) = %v", got)
	}
}

func TestRecordEmptyIsNoop(t *testing.T) {
	a := NewArchive()
	a.Record(1, "www.x.com")
	if a.Len() != 0 {
		t.Fatal("empty record stored something")
	}
}

func TestNamesAndLen(t *testing.T) {
	a := NewArchive()
	a.Record(1, "b.com", addr("10.0.0.1"))
	a.Record(1, "a.com", addr("10.0.0.1"), addr("10.0.0.2"))
	names := a.Names()
	if len(names) != 2 || names[0] != "a.com" || names[1] != "b.com" {
		t.Fatalf("names = %v", names)
	}
	if a.Len() != 3 {
		t.Fatalf("len = %d", a.Len())
	}
}

// Property: spans always satisfy FirstDay <= LastDay and bracket every
// recorded day.
func TestSpanQuickProperty(t *testing.T) {
	f := func(days []uint8) bool {
		if len(days) == 0 {
			return true
		}
		a := NewArchive()
		min, max := int(days[0]), int(days[0])
		for _, d := range days {
			day := int(d)
			a.Record(day, "www.x.com", addr("10.0.0.1"))
			if day < min {
				min = day
			}
			if day > max {
				max = day
			}
		}
		h := a.History("www.x.com")
		return len(h) == 1 && h[0].FirstDay == min && h[0].LastDay == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
