// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (see DESIGN.md §4 for the index). Each benchmark drives the
// code path that regenerates the artifact and reports the headline numbers
// via b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// reproduction run. The cmd/ binaries print the full tables.
package rrdps_test

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"rrdps/internal/alexa"
	"rrdps/internal/attack"
	"rrdps/internal/core/behavior"
	"rrdps/internal/core/collect"
	"rrdps/internal/core/experiment"
	"rrdps/internal/core/filter"
	"rrdps/internal/core/htmlverify"
	"rrdps/internal/core/match"
	"rrdps/internal/core/report"
	"rrdps/internal/core/rrscan"
	"rrdps/internal/core/status"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/edge"
	"rrdps/internal/httpsim"
	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
	"rrdps/internal/world"
)

// ---------------------------------------------------------------------------
// Shared fixtures (built once; benchmarks must not mutate them).

var (
	benchWorldOnce sync.Once
	benchWorld     *world.World
	benchMatcher   *match.Matcher
	benchDomains   []alexa.Domain
)

// sharedWorld returns a 1200-site world with brisk churn, aged 28 days.
func sharedWorld() (*world.World, *match.Matcher, []alexa.Domain) {
	benchWorldOnce.Do(func() {
		cfg := world.PaperConfig(1200)
		cfg.Seed = 2018
		cfg.LeaveRate *= 10
		cfg.SwitchRate *= 10
		cfg.JoinRate *= 10
		benchWorld = world.New(cfg)
		benchWorld.AdvanceDays(28)
		benchMatcher = match.New(benchWorld.Registry, dps.Profiles())
		for _, s := range benchWorld.Sites() {
			benchDomains = append(benchDomains, s.Domain())
		}
	})
	return benchWorld, benchMatcher, benchDomains
}

var (
	dynResultOnce sync.Once
	dynResult     experiment.DynamicsResult
)

// dynamicsResult runs one 14-day §IV campaign (Figs. 2/3/5/6, Table V).
func dynamicsResult() experiment.DynamicsResult {
	dynResultOnce.Do(func() {
		cfg := world.PaperConfig(800)
		cfg.Seed = 2019
		cfg.JoinRate = 0.01
		cfg.LeaveRate = 0.02
		cfg.PauseRate = 0.05
		cfg.SwitchRate = 0.01
		dynResult = experiment.Dynamics{World: world.New(cfg), Days: 14}.Run()
	})
	return dynResult
}

var (
	resResultOnce sync.Once
	resResult     experiment.ResidualResult
)

// residualResult runs one 4-week §V campaign (Table VI, Fig. 9).
func residualResult() experiment.ResidualResult {
	resResultOnce.Do(func() {
		cfg := world.PaperConfig(1500)
		cfg.Seed = 2020
		cfg.LeaveRate *= 12
		cfg.SwitchRate *= 12
		cfg.JoinRate *= 12
		resResult = experiment.Residual{
			World: world.New(cfg), Weeks: 4, WarmupDays: 28,
		}.Run()
	})
	return resResult
}

// ---------------------------------------------------------------------------
// Table II — provider profiles and matching.

func BenchmarkTable2ProviderMatching(b *testing.B) {
	_, matcher, _ := sharedWorld()
	cnames := []dnsmsg.Name{
		"a1b2c3.x.incapdns.net",
		"site7.edgekey.akam.net",
		"d99.cloudfront.net",
		"www.unrelated-site.com",
	}
	nsHosts := []dnsmsg.Name{
		"kate.ns.cloudflare.com",
		"ns1.cdnetdns.cdngc.net",
		"ns1.webhost.net",
	}
	addr := netip.MustParseAddr("20.0.32.7")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cnames {
			matcher.MatchCNAME(c)
		}
		for _, h := range nsHosts {
			matcher.MatchNS(h)
		}
		matcher.MatchA(addr)
	}
	b.ReportMetric(float64(len(dps.Profiles())), "providers")
}

// ---------------------------------------------------------------------------
// Table III — DPS status classification.

func BenchmarkTable3StatusClassification(b *testing.B) {
	w, matcher, domains := sharedWorld()
	resolver := w.NewResolver(netsim.RegionOregon)
	collector := collect.New(resolver, domains[:400])
	snap := collector.Collect(w.Day())
	classifier := status.New(matcher)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classified := classifier.ClassifySnapshot(snap)
		if len(classified) == 0 {
			b.Fatal("no classifications")
		}
	}
	b.ReportMetric(float64(len(snap.Records)), "domains/op")
}

// ---------------------------------------------------------------------------
// Fig. 2 — adoption breakdown (collection + classification cycle).

func BenchmarkFigure2AdoptionBreakdown(b *testing.B) {
	w, matcher, domains := sharedWorld()
	resolver := w.NewResolver(netsim.RegionLondon)
	collector := collect.New(resolver, domains[:300])
	classifier := status.New(matcher)
	b.ReportAllocs()
	b.ResetTimer()
	adopters := 0
	for i := 0; i < b.N; i++ {
		snap := collector.Collect(w.Day())
		classified := classifier.ClassifySnapshot(snap)
		adopters = 0
		for _, a := range classified {
			if a.Status != status.StatusNone {
				adopters++
			}
		}
	}
	b.ReportMetric(float64(adopters), "adopters")
	b.ReportMetric(100*float64(adopters)/300, "adoption_pct")
}

// ---------------------------------------------------------------------------
// Fig. 3 / Table IV — daily behaviour detection.

func BenchmarkFigure3DailyBehaviors(b *testing.B) {
	res := dynamicsResult()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := report.Figure3(res); len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
	b.ReportMetric(res.AvgPerDay(behavior.Join), "joins/day")
	b.ReportMetric(res.AvgPerDay(behavior.Leave), "leaves/day")
	b.ReportMetric(res.AvgPerDay(behavior.Pause), "pauses/day")
	b.ReportMetric(res.AvgPerDay(behavior.Resume), "resumes/day")
	b.ReportMetric(res.AvgPerDay(behavior.Switch), "switches/day")
}

// ---------------------------------------------------------------------------
// Fig. 4 — the usage FSM itself (pure transition throughput).

func BenchmarkFigure4FSMTransitions(b *testing.B) {
	states := []status.Adoption{
		{Status: status.StatusNone},
		{Status: status.StatusOn, Provider: dps.Cloudflare},
		{Status: status.StatusOff, Provider: dps.Cloudflare},
		{Status: status.StatusOn, Provider: dps.Incapsula},
	}
	rng := rand.New(rand.NewSource(4))
	const domains = 256
	seq := make([][]status.Adoption, domains)
	for d := range seq {
		seq[d] = []status.Adoption{states[rng.Intn(len(states))], states[rng.Intn(len(states))]}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracker := behavior.NewTracker(nil)
		for day := 0; day < 2; day++ {
			obs := make(map[dnsmsg.Name]status.Adoption, domains)
			for d := 0; d < domains; d++ {
				obs[dnsmsg.Name(benchDomainName(d))] = seq[d][day]
			}
			tracker.Observe(day, obs)
		}
	}
	b.ReportMetric(domains, "domains/op")
}

func benchDomainName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	return "site-" + string(letters[i%26]) + string(letters[(i/26)%26]) + ".com"
}

// ---------------------------------------------------------------------------
// Fig. 5 — pause-period CDF.

func BenchmarkFigure5PauseCDF(b *testing.B) {
	res := dynamicsResult()
	b.ReportAllocs()
	b.ResetTimer()
	var over5 float64
	for i := 0; i < b.N; i++ {
		overall, _, _ := report.PauseCDF(res)
		over5 = 1 - overall.At(5)
	}
	b.ReportMetric(float64(len(res.PauseWindows)), "windows")
	b.ReportMetric(over5*100, "over5days_pct")
}

// ---------------------------------------------------------------------------
// Table V — origin-IP unchanged rate (HTML verification).

func BenchmarkTable5UnchangedRate(b *testing.B) {
	res := dynamicsResult()
	jr, un, rate := res.TotalUnchangedRate()
	w, _, _ := sharedWorld()
	verifier := htmlverify.New(w.NewHTTPClient(netsim.RegionOregon))
	var site = w.Sites()[0]
	addr := site.OriginAddr()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verifier.Verify(site.WWW(), addr, addr)
	}
	b.ReportMetric(float64(jr), "join_resume")
	b.ReportMetric(float64(un), "unchanged")
	b.ReportMetric(rate*100, "unchanged_pct")
}

// ---------------------------------------------------------------------------
// Fig. 6 — Cloudflare rerouting breakdown.

func BenchmarkFigure6CloudflareBreakdown(b *testing.B) {
	res := dynamicsResult()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := report.Figure6(res); len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
	ns, cname := 0, 0
	for _, bd := range res.Breakdowns {
		ns += bd.CloudflareNS
		cname += bd.CloudflareCNAME
	}
	if ns+cname > 0 {
		b.ReportMetric(100*float64(ns)/float64(ns+cname), "ns_pct")
	}
}

// ---------------------------------------------------------------------------
// Fig. 7 — anycast vantage spread.

func BenchmarkFigure7VantageSpread(b *testing.B) {
	w, _, _ := sharedWorld()
	cf, _ := w.Provider(dps.Cloudflare)
	pool := cf.NSPool()
	addr, _ := cf.NSPoolAddr(pool[len(pool)-1])
	clients := make([]*dnsresolver.Client, 0, 5)
	for i, region := range netsim.VantageRegions() {
		clients = append(clients, dnsresolver.NewClient(
			w.Net, w.Alloc.NextAddr(), region, rand.New(rand.NewSource(int64(i)))))
	}
	var target dnsmsg.Name
	for _, c := range cf.Customers() {
		if c.Method == dps.ReroutingNS && c.State == dps.StateActive {
			target = c.Apex.Child("www")
			break
		}
	}
	if target == "" {
		b.Skip("no active cloudflare NS customer")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clients[i%len(clients)].Exchange(addr, target, dnsmsg.TypeA); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	counts := w.Net.QueryCounts(netsim.Endpoint{Addr: addr, Port: netsim.PortDNS})
	b.ReportMetric(float64(len(counts)), "pops_hit")
}

// ---------------------------------------------------------------------------
// Fig. 8 — the filtering pipeline.

func BenchmarkFigure8FilterPipeline(b *testing.B) {
	w, matcher, domains := sharedWorld()
	resolver := w.NewResolver(netsim.RegionOregon)
	collector := collect.New(resolver, domains)
	snap := collector.Collect(w.Day())
	profile, _ := dps.ProfileFor(dps.Cloudflare)
	_, nsAddrs := rrscan.DiscoverNameservers([]collect.Snapshot{snap}, profile, resolver)
	var vantage []*dnsresolver.Client
	for _, region := range netsim.VantageRegions() {
		vantage = append(vantage, w.NewResolver(region).Client())
	}
	scanned := rrscan.NewScanner(vantage).ScanDirect(nsAddrs, domains)
	verifier := htmlverify.New(w.NewHTTPClient(netsim.RegionOregon))
	pipeline := filter.New(matcher, resolver, verifier)

	b.ResetTimer()
	var rep filter.Report
	for i := 0; i < b.N; i++ {
		rep = pipeline.Run(dps.Cloudflare, scanned)
	}
	b.ReportMetric(float64(rep.Scanned), "scanned")
	b.ReportMetric(float64(len(rep.Hidden)), "hidden")
	b.ReportMetric(float64(len(rep.VerifiedOrigins())), "verified")
}

// ---------------------------------------------------------------------------
// Table VI — residual resolution in the wild.

func BenchmarkTable6ResidualResolution(b *testing.B) {
	res := residualResult()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := report.TableVI(res); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
	ch, ih := res.TotalHidden()
	cv, iv := res.TotalVerified()
	b.ReportMetric(float64(ch), "cf_hidden")
	b.ReportMetric(float64(cv), "cf_verified")
	b.ReportMetric(float64(ih), "inc_hidden")
	b.ReportMetric(float64(iv), "inc_verified")
}

// ---------------------------------------------------------------------------
// Fig. 9 — exposure timeline.

func BenchmarkFigure9ExposureTimeline(b *testing.B) {
	res := residualResult()
	b.ReportAllocs()
	b.ResetTimer()
	var always, appeared int
	for i := 0; i < b.N; i++ {
		tl := res.CFExposure.Timeline()
		always, appeared = tl.AlwaysExposed, tl.AppearedAndDisappeared
	}
	b.ReportMetric(float64(always), "always_exposed")
	b.ReportMetric(float64(appeared), "appear_disappear")
}

// ---------------------------------------------------------------------------
// Scan-path parallelism — serial vs worker-pool throughput on the §V hot
// paths. `go test -bench=BenchmarkScan -benchmem` compares the variants;
// the parallel results are value-identical to serial (see the
// ParallelMatchesSerial tests).

// scanFixture builds the direct-scan inputs once against the shared world.
var (
	scanFixOnce sync.Once
	scanNSAddrs []netip.Addr
	scanVantage []*dnsresolver.Client
	scanLib     *rrscan.CNAMELibrary
	scanScanned map[dnsmsg.Name][]netip.Addr
	scanRes     *dnsresolver.Resolver
)

func scanFixture() {
	scanFixOnce.Do(func() {
		w, matcher, domains := sharedWorld()
		scanRes = w.NewResolver(netsim.RegionOregon)
		collector := collect.New(scanRes, domains)
		collector.SetWorkers(8)
		snap := collector.Collect(w.Day())
		profile, _ := dps.ProfileFor(dps.Cloudflare)
		_, scanNSAddrs = rrscan.DiscoverNameservers([]collect.Snapshot{snap}, profile, scanRes)
		for _, region := range netsim.VantageRegions() {
			scanVantage = append(scanVantage, w.NewResolver(region).Client())
		}
		scanLib = rrscan.NewCNAMELibrary(dps.Incapsula, matcher)
		scanLib.AddSnapshot(snap)
		scanScanned = rrscan.NewScanner(scanVantage).ScanDirect(scanNSAddrs, domains)
	})
}

// BenchmarkScanDirect measures one full direct scan of every domain per
// op, at increasing worker counts.
func BenchmarkScanDirect(b *testing.B) {
	scanFixture()
	_, _, domains := sharedWorld()
	if len(scanNSAddrs) == 0 {
		b.Fatal("no nameservers discovered")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			scanner := rrscan.NewScanner(scanVantage)
			scanner.SetWorkers(workers)
			b.ReportAllocs()
			b.ResetTimer()
			var got int
			for i := 0; i < b.N; i++ {
				got = len(scanner.ScanDirect(scanNSAddrs, domains))
			}
			b.ReportMetric(float64(len(domains)), "domains/op")
			b.ReportMetric(float64(got), "answered")
		})
	}
}

// BenchmarkScanResolveAll measures the Incapsula CNAME re-resolution pass.
func BenchmarkScanResolveAll(b *testing.B) {
	scanFixture()
	if scanLib.Size() == 0 {
		b.Skip("no incapsula CNAMEs collected")
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			scanLib.SetWorkers(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scanRes.PurgeCache()
				if got := scanLib.ResolveAll(scanRes); len(got) == 0 {
					b.Fatal("empty re-resolution")
				}
			}
			b.ReportMetric(float64(scanLib.Size()), "apexes/op")
		})
	}
}

// BenchmarkScanFilterPipeline measures the Fig. 8 filter pass over one
// scan's answers.
func BenchmarkScanFilterPipeline(b *testing.B) {
	scanFixture()
	w, matcher, _ := sharedWorld()
	verifier := htmlverify.New(w.NewHTTPClient(netsim.RegionOregon))
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pipeline := filter.New(matcher, scanRes, verifier)
			pipeline.SetWorkers(workers)
			b.ReportAllocs()
			b.ResetTimer()
			var rep filter.Report
			for i := 0; i < b.N; i++ {
				scanRes.PurgeCache()
				rep = pipeline.Run(dps.Cloudflare, scanScanned)
			}
			b.ReportMetric(float64(rep.Scanned), "scanned")
			b.ReportMetric(float64(len(rep.Hidden)), "hidden")
		})
	}
}

// ---------------------------------------------------------------------------
// Fig. 1 — attack absorbed vs bypassed.

func BenchmarkFigure1AttackBypass(b *testing.B) {
	b.ReportAllocs()
	var protAvail, bypassAvail float64
	for i := 0; i < b.N; i++ {
		protAvail, bypassAvail = runAttackPair(int64(i))
	}
	b.ReportMetric(protAvail*100, "protected_avail_pct")
	b.ReportMetric(bypassAvail*100, "bypass_avail_pct")
}

// runAttackPair runs one protected and one bypass flood on a fresh mini
// scenario, returning the availabilities.
func runAttackPair(seed int64) (protected, bypass float64) {
	clock := simtime.NewSimulated()
	net := netsim.New(netsim.Config{Clock: clock})
	scrubber := attack.NewRateScrubber(2)
	originAddr := netip.MustParseAddr("198.18.0.10")
	origin := httpsim.NewOrigin(httpsim.OriginConfig{Page: httpsim.Page{Title: "V"}})
	guard := attack.NewCapacityGuard(origin, 30)
	net.Register(netsim.Endpoint{Addr: originAddr, Port: netsim.PortHTTP}, netsim.RegionVirginia, guard)

	edgeAddr := netip.MustParseAddr("104.16.0.10")
	e := edge.New(edge.Config{
		Network:  net,
		Addr:     edgeAddr,
		Region:   netsim.RegionOregon,
		Clock:    clock,
		CacheTTL: time.Minute,
		Scrubber: scrubber,
	})
	e.SetBackend("www.v.com", originAddr)
	net.Register(netsim.Endpoint{Addr: edgeAddr, Port: netsim.PortHTTP}, netsim.RegionOregon, e)

	allocBase := netip.MustParseAddr("60.0.0.0")
	next := allocBase
	alloc := func() netip.Addr {
		a := next
		next = next.Next()
		return a
	}
	botnet := attack.NewBotnet(30, alloc, rand.New(rand.NewSource(seed)))
	legit := httpsim.NewClient(net, alloc(), netsim.RegionLondon)
	scenario := attack.Scenario{
		Network:        net,
		TargetHost:     "www.v.com",
		Botnet:         botnet,
		RequestsPerBot: 5,
		Ticks:          3,
		LegitClient:    legit,
		LegitAddr:      edgeAddr,
		Tickers:        []interface{ Tick() }{scrubber, guard},
	}
	scenario.TargetAddr = edgeAddr
	p := scenario.Run()
	clock.Advance(10 * time.Minute)
	scenario.TargetAddr = originAddr
	bp := scenario.Run()
	return p.Availability(), bp.Availability()
}
