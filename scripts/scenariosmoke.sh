#!/usr/bin/env bash
# scenariosmoke.sh — the scenario subsystem end to end at the process
# level. Four stages:
#
#   1. Every spec in scenarios/ must validate (-validate-only) under the
#      binary matching its campaign kind, and the kind mismatch and
#      owned-flag conflicts must fail fast with exit 2.
#   2. paper-baseline must reproduce the flag-driven default dpsmeasure
#      run byte-for-byte (timing lines aside) — the spec format adds
#      provenance, never drift.
#   3. The non-paper scenarios must run green, printing their provenance
#      line to stderr.
#   4. The defended-fleet scenarios must actually bite: both the
#      rate-limited scanner and the amplification flood must recover
#      strictly fewer hidden records than the matched undefended run.
#
# Environment: none; scales are pinned by the specs themselves.
set -euo pipefail
cd "$(dirname "$0")/.."

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/dpsmeasure" ./cmd/dpsmeasure
go build -o "$work/rrscan" ./cmd/rrscan

# --- 1. every shipped spec validates under its own kind ----------------
for spec in scenarios/*.json; do
  if grep -q '"kind": "residual"' "$spec"; then bin=rrscan; else bin=dpsmeasure; fi
  out="$("$work/$bin" -scenario "$spec" -validate-only)"
  echo "$out" | grep -q "ok (sha256:" || \
    { echo "FAIL: $spec did not validate: $out"; exit 1; }
  echo "ok: $bin -validate-only $spec -> $out"
done

# Kind mismatch and flag conflicts must die at flag validation, exit 2.
expect_exit2() { # expect_exit2 <description> <cmd...>
  local desc="$1" code=0; shift
  "$@" > "$work/fail.out" 2>&1 || code=$?
  [ "$code" = 2 ] || \
    { echo "FAIL: $desc exited $code, want 2"; cat "$work/fail.out"; exit 1; }
  echo "ok: $desc -> exit 2"
}
expect_exit2 "residual spec on dpsmeasure" \
  "$work/dpsmeasure" -scenario scenarios/rate-limited-scanner.json -validate-only
expect_exit2 "dynamics spec on rrscan" \
  "$work/rrscan" -scenario scenarios/paper-baseline.json -validate-only
expect_exit2 "-scenario with owned -sites" \
  "$work/dpsmeasure" -scenario scenarios/paper-baseline.json -sites 500
expect_exit2 "-scenario with -legacy" \
  "$work/dpsmeasure" -scenario scenarios/paper-baseline.json -legacy
expect_exit2 "missing spec file" \
  "$work/dpsmeasure" -scenario "$work/nope.json"

# --- 2. paper-baseline == flag-driven default run ----------------------
echo ">> paper-baseline byte-identity"
"$work/dpsmeasure" > "$work/flags.out" 2>/dev/null
"$work/dpsmeasure" -scenario scenarios/paper-baseline.json \
  > "$work/spec.out" 2> "$work/spec.err"
grep -q 'scenario paper-baseline (sha256:' "$work/spec.err" || \
  { echo "FAIL: no provenance line on stderr"; cat "$work/spec.err"; exit 1; }
# The single timing line is the only permitted difference.
grep -v 'world ready in' "$work/flags.out" > "$work/flags.cmp"
grep -v 'world ready in' "$work/spec.out" > "$work/spec.cmp"
diff -u "$work/flags.cmp" "$work/spec.cmp" > /dev/null || \
  { echo "FAIL: paper-baseline report differs from the flag-driven default run"; \
    diff -u "$work/flags.cmp" "$work/spec.cmp" | head -40; exit 1; }
echo "ok: paper-baseline report byte-identical to the default run"

# --- 3. the non-paper scenarios run green ------------------------------
hidden_count() { # hidden_count <report-file> -> cloudflare hidden total
  sed -n 's/^residual: .* cloudflare \([0-9]*\) hidden.*/\1/p' "$1"
}
"$work/dpsmeasure" -scenario scenarios/provider-switch-wave.json \
  > "$work/wave.out" 2> "$work/wave.err"
grep -q 'scenario provider-switch-wave' "$work/wave.err" && \
  grep -q 'dynamics: 42 days' "$work/wave.out" || \
  { echo "FAIL: provider-switch-wave did not run"; cat "$work/wave.err"; exit 1; }
echo "ok: provider-switch-wave ran ($(head -4 "$work/wave.out" | tail -1))"

for spec in rate-limited-scanner amplification-load; do
  "$work/rrscan" -scenario "scenarios/$spec.json" \
    > "$work/$spec.out" 2> "$work/$spec.err"
  grep -q "scenario $spec" "$work/$spec.err" || \
    { echo "FAIL: $spec did not run"; cat "$work/$spec.err"; exit 1; }
  echo "ok: $spec ran ($(head -4 "$work/$spec.out" | tail -1))"
done

# --- 4. the defenses must bite -----------------------------------------
# Matched undefended baseline: same population, horizon, boost, and
# serial workers as the two defended specs.
"$work/rrscan" -sites 1000 -weeks 4 -churn-boost 8 -workers 1 \
  > "$work/undefended.out" 2>/dev/null
base="$(hidden_count "$work/undefended.out")"
[ -n "$base" ] && [ "$base" -gt 0 ] || \
  { echo "FAIL: undefended baseline found no hidden records"; exit 1; }
for spec in rate-limited-scanner amplification-load; do
  got="$(hidden_count "$work/$spec.out")"
  [ -n "$got" ] && [ "$got" -lt "$base" ] || \
    { echo "FAIL: $spec recovered $got hidden records, want fewer than the undefended $base"; exit 1; }
  echo "ok: $spec degraded recall ($got hidden vs $base undefended)"
done

echo "scenariosmoke: all checks passed"
