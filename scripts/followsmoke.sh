#!/usr/bin/env bash
# followsmoke.sh — continuous monitoring end to end at the process level:
# `rrserve -follow` starts over an empty checkpoint directory, a
# `dpsmeasure -follow` daemon starts sealing days into it, and the server
# must surface each sealed day through the HTTP API as the campaign runs.
# SIGTERM then drains the writer (finish the in-flight day, checkpoint,
# print the report) and the follow server must converge on the final day
# within one poll cycle. Finally a fresh batch campaign over the same
# number of days is served side by side and the two servers' answers —
# stats, the full population, a sampled domain and its history — must be
# byte-identical, the process-level face of the append==batch law.
#
# Environment:
#   SMOKE_SITES  campaign population (default 500)
#   SMOKE_DAYS   days to observe before draining the writer (default 5)
set -euo pipefail
cd "$(dirname "$0")/.."

sites="${SMOKE_SITES:-500}"
want_days="${SMOKE_DAYS:-5}"
work="$(mktemp -d)"
writer_pid=""
follow_pid=""
batch_pid=""
cleanup() {
  for pid in "$writer_pid" "$follow_pid" "$batch_pid"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/dpsmeasure" ./cmd/dpsmeasure
go build -o "$work/rrserve" ./cmd/rrserve

wait_addr() { # wait_addr <logfile> <pid-var-value>
  local log="$1" pid="$2" a=""
  for i in $(seq 1 100); do
    a="$(sed -n 's#.*serving on http://##p' "$log" | head -1)"
    [ -n "$a" ] && break
    kill -0 "$pid" 2>/dev/null || { cat "$log" >&2; return 1; }
    sleep 0.1
  done
  [ -n "$a" ] || { echo "server never came up" >&2; cat "$log" >&2; return 1; }
  echo "$a"
}

days_collected() { # days_collected <addr> -> 0 when no epoch yet (503)
  curl -s "http://$1/v1/stats" | python3 -c '
import json, sys
try:
    print(json.load(sys.stdin)["dynamics"]["days_collected"])
except Exception:
    print(0)'
}

# The follow server comes up first, over a directory with no sealed
# rounds at all: liveness must work, data endpoints must answer 503.
mkdir -p "$work/ckpt"
"$work/rrserve" -addr 127.0.0.1:0 -checkpoint-dir "$work/ckpt" \
  -follow -poll 100ms -drain 5s > "$work/follow.log" 2>&1 &
follow_pid=$!
faddr="$(wait_addr "$work/follow.log" "$follow_pid")"
echo ">> rrserve -follow up at $faddr (empty directory)"
grep -q 'no sealed rounds yet' "$work/follow.log" || \
  { echo "FAIL: follow server did not report an empty directory"; cat "$work/follow.log"; exit 1; }
for probe in "200 /healthz" "503 /v1/stats" "503 /v1/domains"; do
  want="${probe%% *}" path="${probe#* }"
  got="$(curl -s -o /dev/null -w '%{http_code}' "http://$faddr$path")"
  [ "$got" = "$want" ] || { echo "FAIL: GET $path -> $got, want $want"; exit 1; }
  echo "ok: GET $path -> $got"
done

# The live campaign: no -max-days, so only SIGTERM ends it. The
# 300ms gap between seals is several server poll cycles wide, which is
# what lets a shell loop observe the epochs advancing one by one.
"$work/dpsmeasure" -sites "$sites" -follow -follow-interval 300ms \
  -checkpoint-dir "$work/ckpt" -checkpoint-every 2 \
  > "$work/writer.out" 2> "$work/writer.err" &
writer_pid=$!
echo ">> dpsmeasure -follow sealing days (pid $writer_pid)"

seen="$work/seen-days"
: > "$seen"
deadline=$((SECONDS + 120))
while :; do
  d="$(days_collected "$faddr")"
  [ "$d" -gt 0 ] && echo "$d" >> "$seen"
  [ "$d" -ge "$want_days" ] && break
  kill -0 "$writer_pid" 2>/dev/null || \
    { echo "FAIL: writer died early"; cat "$work/writer.err"; exit 1; }
  [ "$SECONDS" -lt "$deadline" ] || \
    { echo "FAIL: follow server never reached $want_days days"; cat "$work/follow.log"; exit 1; }
  sleep 0.05
done
distinct="$(sort -un "$seen" | wc -l)"
[ "$distinct" -ge 3 ] || \
  { echo "FAIL: only $distinct distinct epochs observed live — server is not tailing"; exit 1; }
echo "ok: watched the epoch advance through $distinct states up to day $((d - 1))"

# SIGTERM drains the writer: finish the in-flight day, checkpoint, report.
kill -TERM "$writer_pid"
wait "$writer_pid" || { echo "FAIL: writer exited nonzero"; cat "$work/writer.err"; exit 1; }
writer_pid=""
grep -q 'checkpointing and draining' "$work/writer.err" || \
  { echo "FAIL: no drain line in writer stderr"; cat "$work/writer.err"; exit 1; }
final_days="$(grep -c '^day .* sealed' "$work/writer.out")"
[ "$final_days" -ge "$want_days" ] || \
  { echo "FAIL: writer sealed only $final_days days"; exit 1; }
echo "ok: writer drained cleanly after sealing $final_days days"

# Every sealed day must be served within one poll cycle of the drain;
# 5s here is fifty cycles of headroom for a loaded runner.
deadline=$((SECONDS + 5))
while :; do
  d="$(days_collected "$faddr")"
  [ "$d" = "$final_days" ] && break
  [ "$SECONDS" -lt "$deadline" ] || \
    { echo "FAIL: follow server stuck at day $((d - 1)), writer sealed $final_days days"; exit 1; }
  sleep 0.1
done
echo "ok: follow server converged on all $final_days sealed days"

# Append==batch at the process level: a fresh batch campaign over the
# same population, seed, and day count, served by a plain (non-follow)
# rrserve, must answer every query byte-identically.
echo ">> batch reference: $sites sites, $final_days days"
"$work/dpsmeasure" -sites "$sites" -days "$final_days" \
  -checkpoint-dir "$work/batch" -checkpoint-every 2 > "$work/batch.out"
"$work/rrserve" -addr 127.0.0.1:0 -checkpoint-dir "$work/batch" \
  -drain 5s > "$work/batch.log" 2>&1 &
batch_pid=$!
baddr="$(wait_addr "$work/batch.log" "$batch_pid")"
echo ">> batch rrserve up at $baddr"

apex="$(curl -s "http://$baddr/v1/domains?limit=1" | python3 -c '
import json, sys
d = json.load(sys.stdin)
assert d["total"] > 0, "batch server has no domains"
print(d["domains"][0]["apex"])')"
for path in /v1/stats "/v1/domains?limit=$sites" "/v1/domain/$apex" "/v1/domain/$apex/history"; do
  curl -s "http://$faddr$path" > "$work/follow.body"
  curl -s "http://$baddr$path" > "$work/batch.body"
  diff -u "$work/batch.body" "$work/follow.body" > /dev/null || \
    { echo "FAIL: GET $path differs between follow and batch servers"; \
      diff -u "$work/batch.body" "$work/follow.body" | head -40; exit 1; }
  echo "ok: GET $path identical on both servers"
done

# Both servers must TERM out cleanly.
for pair in "follow_pid follow.log" "batch_pid batch.log"; do
  var="${pair%% *}" log="${pair#* }"
  pid="${!var}"
  kill -TERM "$pid"
  wait "$pid" || { echo "FAIL: rrserve ($log) exited nonzero"; cat "$work/$log"; exit 1; }
  printf -v "$var" ''
  grep -q 'bye' "$work/$log" || \
    { echo "FAIL: no clean shutdown line in $log"; cat "$work/$log"; exit 1; }
done
echo "ok: both servers drained on SIGTERM"
echo "followsmoke: all checks passed"
