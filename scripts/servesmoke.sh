#!/usr/bin/env bash
# servesmoke.sh — the lookup service end to end at the process level:
# run a short checkpointing campaign, point rrserve at the directory,
# and drive the HTTP API the way a client would — authorized and not,
# known apex and not, inside and outside the rate budget — asserting
# status codes and JSON shape. Finishes with a graceful TERM and checks
# the server drained cleanly.
#
# Environment:
#   SMOKE_SITES  campaign population (default 2000)
#   SMOKE_DAYS   campaign days (default 5)
set -euo pipefail
cd "$(dirname "$0")/.."

sites="${SMOKE_SITES:-2000}"
days="${SMOKE_DAYS:-5}"
work="$(mktemp -d)"
key="smoke-key-1"
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/dpsmeasure" ./cmd/dpsmeasure
go build -o "$work/rrserve" ./cmd/rrserve

echo ">> campaign: $sites sites, $days days, checkpointing"
"$work/dpsmeasure" -sites "$sites" -days "$days" \
  -checkpoint-dir "$work/ckpt" -checkpoint-every 2 > /dev/null
ls -l "$work/ckpt" >&2

# -rate 5 -burst 8: small enough that a tight request loop trips 429,
# big enough that the scripted checks below never do.
"$work/rrserve" -addr 127.0.0.1:0 -checkpoint-dir "$work/ckpt" \
  -api-keys "$key,other-key" -rate 5 -burst 8 -drain 5s \
  > "$work/serve.log" 2>&1 &
server_pid=$!

addr=""
for i in $(seq 1 100); do
  addr="$(sed -n 's#.*serving on http://##p' "$work/serve.log" | head -1)"
  [ -n "$addr" ] && break
  kill -0 "$server_pid" 2>/dev/null || { cat "$work/serve.log"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "server never came up"; cat "$work/serve.log"; exit 1; }
echo ">> rrserve up at $addr"

code() { # code <want> <path> [curl args...]
  local want="$1" path="$2"
  shift 2
  local got
  got="$(curl -s -o /dev/null -w '%{http_code}' "$@" "http://$addr$path")"
  if [ "$got" != "$want" ]; then
    echo "FAIL: GET $path -> $got, want $want"
    exit 1
  fi
  echo "ok: GET $path -> $got"
}
auth=(-H "Authorization: Bearer $key")

# Liveness needs no key; everything else does.
code 200 /healthz
code 401 /v1/stats
code 401 /v1/stats -H "Authorization: Bearer wrong-key"
code 200 /v1/stats "${auth[@]}"
code 200 /v1/domains "${auth[@]}"
code 404 /v1/domain/never-seen.example "${auth[@]}"
code 400 "/v1/domains?limit=bogus" "${auth[@]}"

# Apexes are seed-random, so discover one through the API itself, then
# assert the domain and history answers' shape.
curl -s "${auth[@]}" "http://$addr/v1/domains?limit=3" > "$work/domains.json"
curl -s "${auth[@]}" "http://$addr/v1/stats" > "$work/stats.json"
apex="$(python3 - "$work/domains.json" <<'PYEOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["total"] > 0, "no domains served"
assert len(d["domains"]) == 3, f'limit ignored: {len(d["domains"])}'
print(d["domains"][0]["apex"])
PYEOF
)"
echo ">> probing apex $apex"
curl -s "${auth[@]}" "http://$addr/v1/domain/$apex" > "$work/domain.json"
curl -s "${auth[@]}" "http://$addr/v1/domain/$apex/history" > "$work/history.json"
python3 - "$work/domain.json" "$work/history.json" "$work/stats.json" "$apex" <<'PYEOF'
import json, sys
domain, history, stats = (json.load(open(p)) for p in sys.argv[1:4])
apex = sys.argv[4]
assert domain["apex"] == apex, f'asked {apex}, got {domain["apex"]}'
assert "day" in domain and "live" in domain, f"domain shape: {sorted(domain)}"
if "verdict" in domain:
    assert domain["verdict"]["status"] in ("ON", "OFF", "NONE"), domain["verdict"]
assert history["apex"] == apex
assert history["record_versions"], "history has no record versions"
assert stats["kind"] == "dynamics", stats["kind"]
assert stats["store"]["apexes"] > 0, stats["store"]
assert stats["dynamics"]["population"] > 0, stats["dynamics"]
print(f'ok: domain/history/stats shape (day {domain["day"]}, '
      f'{stats["store"]["apexes"]} apexes)')
PYEOF

# Hammer one key past its bucket: 30 back-to-back requests against
# budget 8+ must trip 429 at least once, and the 429 must carry
# Retry-After. The other key's bucket is untouched.
saw429=0
for i in $(seq 1 30); do
  got="$(curl -s -o /dev/null -w '%{http_code}' "${auth[@]}" "http://$addr/v1/stats")"
  if [ "$got" = "429" ]; then saw429=1; break; fi
done
[ "$saw429" = 1 ] || { echo "FAIL: 30 rapid requests never rate-limited"; exit 1; }
curl -s -D "$work/429.hdr" -o /dev/null "${auth[@]}" "http://$addr/v1/stats" || true
grep -qi '^retry-after: [0-9]' "$work/429.hdr" || \
  { echo "FAIL: 429 without Retry-After"; cat "$work/429.hdr"; exit 1; }
echo "ok: rate limit trips with Retry-After"
code 200 /v1/stats -H "Authorization: Bearer other-key"

# Request metrics must have counted all of the above.
curl -s -H "Authorization: Bearer other-key" \
  "http://$addr/metrics" > "$work/metrics.json"
python3 - "$work/metrics.json" <<'PYEOF'
import json, sys
d = json.load(open(sys.argv[1]))
c = d["snapshot"]["counters"]
for name in ("serve.requests.stats", "serve.requests.domain",
             "serve.auth.rejected", "serve.ratelimited", "serve.domain.hit"):
    if c.get(name, 0) == 0:
        sys.exit(f"counter {name} is zero or absent")
print(f"ok: request metrics counted ({len(c)} counters)")
PYEOF

kill -TERM "$server_pid"
wait "$server_pid" || { echo "FAIL: server exited nonzero"; cat "$work/serve.log"; exit 1; }
server_pid=""
grep -q 'bye' "$work/serve.log" || { echo "FAIL: no clean shutdown line"; cat "$work/serve.log"; exit 1; }
echo "ok: graceful shutdown"
echo "servesmoke: all checks passed"
