#!/usr/bin/env bash
# shardsmoke.sh — the shard-parallel driver end to end at the process
# level and at meaningful scale: run each campaign binary unsharded and
# with -shards 4, and demand the merged sharded report be identical to
# the unsharded one.
#
# Usage:
#   scripts/shardsmoke.sh            # defaults: 100k-domain dpsmeasure,
#                                    # 20k-domain rrscan
#
# Environment:
#   SMOKE_SITES     dpsmeasure population (default 100000)
#   SMOKE_DAYS      dpsmeasure campaign days (default 3)
#   SMOKE_RR_SITES  rrscan population (default 20000)
#   SMOKE_RR_WEEKS  rrscan scan weeks (default 2)
#   SMOKE_SHARDS    shard count for the sharded legs (default 4)
#
# Three report regions legitimately differ between layouts and are
# scrubbed before the diff:
#   - timing/progress headers ("building world", "campaign done", ...);
#   - the fault-tolerance summary: shared-infra queries (TLD referrals,
#     nameserver discovery) are issued once per shard world, so raw
#     query tallies scale with the shard count even though every
#     per-domain answer is identical;
#   - rrscan's Fig. 7 per-PoP load spread, for the same reason — load
#     *distribution* depends on query layout, content does not.
# Everything else — every figure, table, detection count, exposure row —
# must match byte for byte.
set -euo pipefail
cd "$(dirname "$0")/.."

sites="${SMOKE_SITES:-100000}"
days="${SMOKE_DAYS:-3}"
rr_sites="${SMOKE_RR_SITES:-20000}"
rr_weeks="${SMOKE_RR_WEEKS:-2}"
shards="${SMOKE_SHARDS:-4}"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

scrub() {
  sed '/^Fault tolerance summary/,/sidelined nameservers/d; /^Fig\. 7 /,$d' \
    | grep -v -e 'building world' -e 'world ready in' \
              -e 'campaign over' -e 'campaign done' \
    | awk 'NF{found=1} found'
}

timed() { # timed <label> <outfile> <cmd...>
  local label="$1" out="$2"
  shift 2
  local t0 t1
  t0=$(date +%s)
  "$@" > "$out"
  t1=$(date +%s)
  echo ">> $label: $((t1 - t0))s wall" >&2
}

go build -o "$work/dpsmeasure" ./cmd/dpsmeasure
go build -o "$work/rrscan" ./cmd/rrscan

timed "dpsmeasure $sites sites, 1 shard" "$work/dm1.txt" \
  "$work/dpsmeasure" -sites "$sites" -days "$days"
timed "dpsmeasure $sites sites, $shards shards" "$work/dmN.txt" \
  "$work/dpsmeasure" -sites "$sites" -days "$days" -shards "$shards" \
  -checkpoint-dir "$work/ckpt"
du -sk "$work"/ckpt/shard-* | sed 's/^/>> checkpoint KiB: /' >&2
diff <(scrub < "$work/dm1.txt") <(scrub < "$work/dmN.txt")
echo "dpsmeasure: merged $shards-shard report == unsharded report"

timed "rrscan $rr_sites sites, 1 shard" "$work/rr1.txt" \
  "$work/rrscan" -sites "$rr_sites" -weeks "$rr_weeks" -warmup 7
timed "rrscan $rr_sites sites, $shards shards" "$work/rrN.txt" \
  "$work/rrscan" -sites "$rr_sites" -weeks "$rr_weeks" -warmup 7 \
  -shards "$shards"
diff <(scrub < "$work/rr1.txt") <(scrub < "$work/rrN.txt")
echo "rrscan: merged $shards-shard report == unsharded report"
