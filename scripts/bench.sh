#!/usr/bin/env bash
# bench.sh — run the resolve-hot-path benchmark suite and emit the
# machine-readable BENCH_resolve.json report the CI bench gate compares
# against the committed baseline.
#
# Usage:
#   scripts/bench.sh [output.json]       # default: BENCH_resolve.json
#
# Environment:
#   BENCH_COUNT     repetitions per benchmark (default 6); benchjson keeps
#                   the best run per metric, damping scheduler noise.
#   BENCH_TIME      -benchtime per repetition (default 500ms; allocs/op is
#                   exact at any length, and min-of-6 at 500ms keeps ns/op
#                   inside the gate's 10% band on a busy runner).
#
# The suite covers the layers under every campaign query: dnsmsg
# encode/decode, the resolver cache + iterate path, the raw fabric
# exchange, the scan loop, and the campaign's retained-bytes footprint
# (the retained-B/domain-day metric from BenchmarkDynamicsMemory).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_resolve.json}"
count="${BENCH_COUNT:-6}"
benchtime="${BENCH_TIME:-500ms}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

run() { # run <pkg> <bench-regexp> [extra go test flags...]
  local pkg="$1" pat="$2"
  shift 2
  echo ">> go test -bench='$pat' $* $pkg" >&2
  go test -run='^$' -bench="$pat" -benchmem "$@" "$pkg" | tee -a "$raw" >&2
}

# The zero-alloc contract: cached resolve must stay at 0 allocs/op,
# uncached at <=4 (also asserted in-test by TestResolveAllocBudget).
run ./internal/dnsresolver 'BenchmarkResolve|BenchmarkExchangeDirect' \
  -count="$count" -benchtime="$benchtime"

# The codec under every exchange.
run ./internal/dnsmsg '.' -count="$count" -benchtime="$benchtime"

# The scan loop the campaigns multiply by millions of domain-days.
run . 'BenchmarkScan' -count="$count" -benchtime="$benchtime"

# The incremental engine's steady-state day append (daemon mode's
# per-round cost). Quiescent world: allocs/op is deterministic, so the
# gate catches any change that re-touches unchanged records.
run ./internal/core/experiment 'BenchmarkAppendDay' \
  -count="$count" -benchtime="$benchtime"

# Campaign memory footprint; a single shot is exact (retained bytes are
# measured, not timed) and keeps the suite fast.
run ./internal/core/experiment 'BenchmarkDynamicsMemory' \
  -count=1 -benchtime=1x

go run ./tools/benchjson -o "$out" < "$raw"
echo "wrote $out" >&2
