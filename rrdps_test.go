package rrdps_test

import (
	"strings"
	"testing"

	"rrdps"
)

// TestFacadeEndToEnd drives the whole library through the public API only:
// build a world, run both campaigns, render reports.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := rrdps.PaperConfig(400)
	cfg.Seed = 7001
	cfg.JoinRate *= 20
	cfg.LeaveRate *= 20
	cfg.PauseRate *= 20
	cfg.SwitchRate *= 20
	w := rrdps.NewWorld(cfg)

	dyn := rrdps.Dynamics{World: w, Days: 7}.Run()
	if dyn.AvgAdoptionRate() <= 0 {
		t.Fatal("no adoption measured")
	}
	for _, render := range []func(rrdps.DynamicsResult) string{
		rrdps.RenderFigure2, rrdps.RenderFigure3, rrdps.RenderFigure5,
		rrdps.RenderFigure6, rrdps.RenderTableV,
	} {
		if out := render(dyn); out == "" {
			t.Fatal("empty rendering")
		}
	}

	cfg2 := rrdps.PaperConfig(400)
	cfg2.Seed = 7002
	cfg2.LeaveRate *= 20
	cfg2.SwitchRate *= 20
	res := rrdps.Residual{World: rrdps.NewWorld(cfg2), Weeks: 2, WarmupDays: 14}.Run()
	if out := rrdps.RenderTableVI(res); !strings.Contains(out, "Cloudflare") {
		t.Fatalf("TableVI rendering: %q", out)
	}
	if out := rrdps.TableVICSV(res); !strings.Contains(out, "provider,week,hidden,verified") {
		t.Fatalf("TableVI CSV: %q", out)
	}
}

func TestFacadeProfiles(t *testing.T) {
	profiles := rrdps.Profiles()
	if len(profiles) != 11 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	residual := 0
	for _, p := range profiles {
		if p.Residual() {
			residual++
		}
	}
	if residual != 2 {
		t.Fatalf("residual-policy providers = %d, want 2 (Cloudflare, Incapsula)", residual)
	}
	if out := rrdps.RenderTableII(); !strings.Contains(out, "Incapsula") {
		t.Fatal("TableII rendering incomplete")
	}
}

func TestFacadeSiteOperations(t *testing.T) {
	cfg := rrdps.PaperConfig(120)
	cfg.Seed = 7003
	cfg.AdoptionOverallRate = 0
	cfg.AdoptionTopRate = 0
	w := rrdps.NewWorld(cfg)
	site := w.Sites()[0]

	if err := site.Join(rrdps.Cloudflare, rrdps.ReroutingNS, rrdps.PlanFree); err != nil {
		t.Fatal(err)
	}
	if !site.Protected() {
		t.Fatal("site not protected after join")
	}
	if err := site.Leave(true); err != nil {
		t.Fatal(err)
	}

	// The purge trial also runs through the facade.
	week, err := rrdps.PurgeTrial{World: w, Provider: rrdps.Incapsula, Plan: rrdps.PlanFree}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if week != 4 {
		t.Fatalf("purge week = %d", week)
	}
}

func TestFacadeNameParsing(t *testing.T) {
	n, err := rrdps.ParseName("WWW.Example.COM.")
	if err != nil || n != rrdps.Name("www.example.com") {
		t.Fatalf("ParseName = %q, %v", n, err)
	}
	if len(rrdps.VantageRegions()) != 5 {
		t.Fatal("vantage regions != 5")
	}
}
