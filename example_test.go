package rrdps_test

import (
	"fmt"

	"rrdps"
)

// ExampleNewWorld builds a small deterministic world and inspects its
// population.
func ExampleNewWorld() {
	cfg := rrdps.PaperConfig(300)
	cfg.Seed = 12345
	w := rrdps.NewWorld(cfg)

	adopted := 0
	for _, site := range w.Sites() {
		if key, _, _ := site.Provider(); key != "" {
			adopted++
		}
	}
	fmt.Printf("sites: %d\n", len(w.Sites()))
	fmt.Printf("initial adopters: %d\n", adopted)
	// Output:
	// sites: 300
	// initial adopters: 31
}

// ExampleProfiles lists which providers are vulnerable to residual
// resolution by policy.
func ExampleProfiles() {
	for _, p := range rrdps.Profiles() {
		if p.Residual() {
			fmt.Println(p.DisplayName)
		}
	}
	// Output:
	// Cloudflare
	// Incapsula
}

// ExamplePurgeTrial replays the paper's §V-A.3 controlled experiment.
func ExamplePurgeTrial() {
	cfg := rrdps.PaperConfig(150)
	cfg.Seed = 54321
	// Freeze background churn; the trial drives its own site.
	cfg.JoinRate, cfg.LeaveRate, cfg.PauseRate, cfg.SwitchRate = 0, 0, 0, 0
	cfg.UnprotectedIPChangeRate = 0
	w := rrdps.NewWorld(cfg)

	week, err := rrdps.PurgeTrial{
		World:    w,
		Provider: rrdps.Cloudflare,
		Plan:     rrdps.PlanFree,
	}.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("residual record purged at week %d\n", week)
	// Output:
	// residual record purged at week 4
}

// ExampleLoadScenario loads a spec from the scenario library and
// compiles it onto the runtime configuration types.
func ExampleLoadScenario() {
	spec, err := rrdps.LoadScenario("scenarios/paper-baseline.json")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	comp := rrdps.CompileScenario(spec)
	fmt.Printf("scenario: %s\n", comp.Name())
	fmt.Printf("kind: %s\n", comp.Kind)
	fmt.Printf("sites: %d\n", comp.World.NumSites)
	fmt.Printf("days: %d\n", comp.Days)
	// Output:
	// scenario: paper-baseline
	// kind: dynamics
	// sites: 2000
	// days: 42
}

// ExampleParseName shows name normalization.
func ExampleParseName() {
	n, _ := rrdps.ParseName("WWW.Example.COM.")
	fmt.Println(n)
	// Output:
	// www.example.com
}
