package main

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: rrdps/internal/dnsresolver
cpu: Fake CPU @ 2.00GHz
BenchmarkResolveCached-8     7000000     162.1 ns/op     0 B/op     0 allocs/op
BenchmarkResolveCached-8     7100000     158.9 ns/op     0 B/op     0 allocs/op
BenchmarkResolveUncached-8    180000    6631 ns/op   176 B/op     3 allocs/op
BenchmarkDynamicsMemory/sites=1000-8   1   123456789 ns/op   52.0 retained-B/domain-day   100 B/op   5 allocs/op
PASS
ok   rrdps/internal/dnsresolver  3.1s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" {
		t.Errorf("platform = %s/%s", rep.GOOS, rep.GOARCH)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	byName := map[string]Benchmark{}
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	cached, ok := byName["BenchmarkResolveCached"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %+v", rep.Benchmarks)
	}
	if cached.Runs != 2 {
		t.Errorf("cached runs = %d, want 2", cached.Runs)
	}
	// Repeated runs keep the best (minimum) value per metric.
	if got := cached.Metrics["ns/op"]; got != 158.9 {
		t.Errorf("cached ns/op = %v, want best-of 158.9", got)
	}
	if got := cached.Metrics["allocs/op"]; got != 0 {
		t.Errorf("cached allocs/op = %v, want 0", got)
	}
	// Custom ReportMetric units ride along; sub-benchmark paths survive.
	mem, ok := byName["BenchmarkDynamicsMemory/sites=1000"]
	if !ok {
		t.Fatalf("sub-benchmark name mangled: %+v", rep.Benchmarks)
	}
	if got := mem.Metrics["retained-B/domain-day"]; got != 52.0 {
		t.Errorf("retained-B/domain-day = %v, want 52", got)
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkResolveCached-8":         "BenchmarkResolveCached",
		"BenchmarkResolveCached":           "BenchmarkResolveCached",
		"BenchmarkScanDirect/workers=4-16": "BenchmarkScanDirect/workers=4",
		"BenchmarkOdd-name":                "BenchmarkOdd-name",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func writeReport(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := dir + "/" + name
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

var gateAll = regexp.MustCompile(defaultGate)

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", `{"benchmarks":[
		{"name":"BenchmarkResolveCached","runs":1,"metrics":{"ns/op":160,"allocs/op":0}},
		{"name":"BenchmarkResolveUncached","runs":1,"metrics":{"ns/op":6600,"allocs/op":3}}]}`)

	// Within band, allocs flat: passes.
	ok := writeReport(t, dir, "ok.json", `{"benchmarks":[
		{"name":"BenchmarkResolveCached","runs":1,"metrics":{"ns/op":170,"allocs/op":0}},
		{"name":"BenchmarkResolveUncached","runs":1,"metrics":{"ns/op":6000,"allocs/op":3}}]}`)
	if err := runCompare(base, ok, 0.10, gateAll); err != nil {
		t.Errorf("in-band report failed the gate: %v", err)
	}

	// 1 extra alloc: fails even with ns/op improved.
	alloc := writeReport(t, dir, "alloc.json", `{"benchmarks":[
		{"name":"BenchmarkResolveCached","runs":1,"metrics":{"ns/op":100,"allocs/op":1}},
		{"name":"BenchmarkResolveUncached","runs":1,"metrics":{"ns/op":6000,"allocs/op":3}}]}`)
	if err := runCompare(base, alloc, 0.10, gateAll); err == nil {
		t.Error("allocs/op regression passed the gate")
	}

	// ns/op past the band: fails.
	slow := writeReport(t, dir, "slow.json", `{"benchmarks":[
		{"name":"BenchmarkResolveCached","runs":1,"metrics":{"ns/op":200,"allocs/op":0}},
		{"name":"BenchmarkResolveUncached","runs":1,"metrics":{"ns/op":6600,"allocs/op":3}}]}`)
	if err := runCompare(base, slow, 0.10, gateAll); err == nil {
		t.Error("25% ns/op regression passed the 10% gate")
	}

	// Benchmark vanished from the fresh report: fails.
	missing := writeReport(t, dir, "missing.json", `{"benchmarks":[
		{"name":"BenchmarkResolveCached","runs":1,"metrics":{"ns/op":160,"allocs/op":0}}]}`)
	if err := runCompare(base, missing, 0.10, gateAll); err == nil {
		t.Error("missing benchmark passed the gate")
	}
}

// TestCompareUngatedIsInformational: campaign-scale benchmarks outside
// the gate regexp never fail the build — their concurrent workers make
// allocs/op scheduling-dependent, so they are trend data, not a contract.
func TestCompareUngatedIsInformational(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", `{"benchmarks":[
		{"name":"BenchmarkScanDirect/workers=8","runs":1,"metrics":{"ns/op":4000000,"allocs/op":13000}}]}`)
	worse := writeReport(t, dir, "worse.json", `{"benchmarks":[
		{"name":"BenchmarkScanDirect/workers=8","runs":1,"metrics":{"ns/op":9000000,"allocs/op":14000}}]}`)
	if err := runCompare(base, worse, 0.10, gateAll); err != nil {
		t.Errorf("ungated regression failed the build: %v", err)
	}
}
