// Command benchjson converts `go test -bench` output into a
// machine-readable JSON report and compares two such reports for the CI
// bench gate. It is pure stdlib on purpose: the gate must not drag a
// dependency into a zero-dependency module.
//
// Parse mode (default) reads benchmark output on stdin and writes JSON:
//
//	go test -run='^$' -bench=Resolve -benchmem ./internal/dnsresolver | benchjson -o BENCH_resolve.json
//
// Repeated runs of one benchmark (-count=N) collapse to the best (minimum)
// value per metric, damping scheduler noise; allocs/op is deterministic,
// so min and max agree there. The -8 style GOMAXPROCS suffix is stripped
// from names so reports compare across machines with different core
// counts.
//
// Compare mode gates a fresh report against a committed baseline:
//
//	benchjson -compare -tol 0.10 BENCH_resolve.json fresh.json
//
// It fails (exit 1) when any baseline benchmark is missing from the fresh
// report, regresses allocs/op at all, or regresses ns/op by more than the
// tolerance band. Improvements and new benchmarks pass silently.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Report is the JSON shape of one benchmark run.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's best-of metrics. Metrics maps unit name
// (ns/op, B/op, allocs/op, plus any b.ReportMetric units like
// retained-B/domain-day) to value.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int                `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	var (
		out     = flag.String("o", "", "parse mode: write JSON here instead of stdout")
		compare = flag.Bool("compare", false, "compare mode: args are <baseline.json> <fresh.json>")
		tol     = flag.Float64("tol", 0.10, "compare mode: allowed fractional ns/op regression")
		gate    = flag.String("gate", defaultGate, "compare mode: regexp of benchmarks the gate fails on; others are informational")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare [-tol 0.10] [-gate regexp] <baseline.json> <fresh.json>")
			os.Exit(2)
		}
		gateRe, err := regexp.Compile(*gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -gate:", err)
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *tol, gateRe); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output and folds it into a Report.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	byName := map[string]*Benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		name := trimProcs(fields[0])
		b := byName[name]
		if b == nil {
			b = &Benchmark{Name: name, Metrics: map[string]float64{}}
			byName[name] = b
		}
		b.Runs++
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			unit := fields[i+1]
			if prev, ok := b.Metrics[unit]; !ok || v < prev {
				b.Metrics[unit] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rep.Benchmarks = append(rep.Benchmarks, *byName[n])
	}
	return rep, nil
}

// trimProcs strips the trailing -N GOMAXPROCS suffix from a benchmark
// name, leaving sub-benchmark paths intact.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func load(path string) (map[string]Benchmark, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]Benchmark, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		out[b.Name] = b
	}
	return out, nil
}

// defaultGate is the hot-path set: the codec and resolver benchmarks,
// plus the incremental engine's steady-state AppendDay — all
// single-threaded with deterministic allocs/op, so a hard gate holds.
// Campaign-scale benchmarks (Scan*, DynamicsMemory, DynamicsRun) run
// concurrent workers or churned worlds, so their allocs/op wobbles with
// scheduling — they are reported for trend-watching but never fail the
// build.
const defaultGate = `^Benchmark(Resolve|Exchange|Encode|Decode|ParseName|AppendDay)`

// runCompare gates fresh against base. For gated benchmarks, a missing
// entry or any allocs/op regression fails outright and ns/op regressions
// fail past the tolerance; ungated benchmarks are informational.
func runCompare(basePath, freshPath string, tol float64, gate *regexp.Regexp) error {
	base, err := load(basePath)
	if err != nil {
		return err
	}
	fresh, err := load(freshPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)

	failures := 0
	for _, n := range names {
		b := base[n]
		gated := gate.MatchString(n)
		f, ok := fresh[n]
		if !ok {
			if gated {
				fmt.Printf("FAIL %-50s missing from fresh report\n", n)
				failures++
			} else {
				fmt.Printf("info %-50s missing from fresh report\n", n)
			}
			continue
		}
		status := "ok  "
		if !gated {
			status = "info"
		}
		var notes []string
		fail := false
		if bn, fn := b.Metrics["ns/op"], f.Metrics["ns/op"]; bn > 0 {
			delta := (fn - bn) / bn
			notes = append(notes, fmt.Sprintf("ns/op %.0f -> %.0f (%+.1f%%)", bn, fn, 100*delta))
			if gated && delta > tol {
				fail = true
				notes = append(notes, fmt.Sprintf("exceeds +%.0f%% band", 100*tol))
			}
		}
		ba, hasBase := b.Metrics["allocs/op"]
		fa, hasFresh := f.Metrics["allocs/op"]
		if hasBase {
			notes = append(notes, fmt.Sprintf("allocs/op %.0f -> %.0f", ba, fa))
			// Any allocation regression fails a gated benchmark: its
			// allocs/op is deterministic, so even +1 means the hot path
			// grew an allocation.
			if gated && (!hasFresh || math.Round(fa) > math.Round(ba)) {
				fail = true
				notes = append(notes, "allocs/op regressed")
			}
		}
		if fail {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s %-50s %s\n", status, n, strings.Join(notes, ", "))
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed vs %s", failures, basePath)
	}
	fmt.Printf("all %d benchmarks within budget vs %s\n", len(names), basePath)
	return nil
}
