// Package tools pins the versions of the external developer tools the
// Makefile and CI invoke, so local runs and the workflow use identical
// binaries.
//
// The usual tools.go idiom (blank imports behind a build tag) would force
// the tool modules into go.mod; this module is deliberately
// zero-dependency, so the pins live here as constants instead and the
// Makefile extracts them (see STATICCHECK_VERSION there). Tools run via
// `go run <module>@<version>`, which resolves outside the module graph.
package tools

// Tool versions. Bump here — the Makefile and .github/workflows/ci.yml
// both read this file, so one edit moves every consumer.
const (
	// StaticcheckVersion pins honnef.co/go/tools/cmd/staticcheck.
	StaticcheckVersion = "2023.1.7"
	// GovulncheckVersion pins golang.org/x/vuln/cmd/govulncheck.
	GovulncheckVersion = "v1.1.3"
)
