// Quickstart: build a small simulated Internet, watch one website join a
// DPS, leave it, and observe the residual resolution that leaks its origin.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/world"
)

func main() {
	// A 200-site world with every Table II provider wired up.
	cfg := world.PaperConfig(200)
	cfg.Seed = 42
	w := world.New(cfg)

	// Pick a site that is not yet on any DPS.
	var site = w.Sites()[0]
	for _, s := range w.Sites() {
		if key, _, _ := s.Provider(); key == "" {
			site = s
			break
		}
	}
	host := site.WWW()
	fmt.Printf("site: %s, origin %v\n", host, site.OriginAddr())

	// Resolve it like any client would.
	resolver := w.NewResolver(netsim.RegionLondon)
	res, err := resolver.Resolve(host, dnsmsg.TypeA)
	if err != nil {
		log.Fatalf("resolve: %v", err)
	}
	fmt.Printf("public resolution (no DPS):  %v\n", res.Addrs())

	// The site joins Cloudflare with NS-based rerouting.
	if err := site.Join(dps.Cloudflare, dps.ReroutingNS, dps.PlanFree); err != nil {
		log.Fatalf("join: %v", err)
	}
	resolver.PurgeCache()
	res, err = resolver.Resolve(host, dnsmsg.TypeA)
	if err != nil {
		log.Fatalf("resolve: %v", err)
	}
	fmt.Printf("public resolution (on DPS):  %v  <- edge, origin hidden\n", res.Addrs())

	// The site leaves (and tells Cloudflare). Its own DNS serves the
	// origin again, and Cloudflare keeps a residual record.
	if err := site.Leave(true); err != nil {
		log.Fatalf("leave: %v", err)
	}
	resolver.PurgeCache()
	res, err = resolver.Resolve(host, dnsmsg.TypeA)
	if err != nil {
		log.Fatalf("resolve: %v", err)
	}
	fmt.Printf("public resolution (left):    %v\n", res.Addrs())

	// An attacker interrogates a Cloudflare nameserver directly.
	cf, _ := w.Provider(dps.Cloudflare)
	pool := cf.NSPool()
	nsAddr, _ := cf.NSPoolAddr(pool[0])
	attacker := dnsresolver.NewClient(w.Net, w.Alloc.NextAddr(), netsim.RegionTokyo, rand.New(rand.NewSource(7)))
	resp, err := attacker.Exchange(nsAddr, host, dnsmsg.TypeA)
	if err != nil {
		log.Fatalf("direct query: %v", err)
	}
	leaked := resp.AnswersOfType(dnsmsg.TypeA)[0].Data.(dnsmsg.AData).Addr
	fmt.Printf("residual resolution via %s: %v\n", pool[0], leaked)
	if leaked == site.OriginAddr() {
		fmt.Println("-> the previous DPS provider still reveals the origin address.")
	}
}
