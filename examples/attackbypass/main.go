// Attack bypass: build the Fig. 1 scenario from individual components —
// one origin, one DPS provider with a scrubbing edge, one botnet — and
// show protection holding at the edge but collapsing once the origin
// address is known.
//
//	go run ./examples/attackbypass
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/netip"
	"time"

	"rrdps/internal/attack"
	"rrdps/internal/dps"
	"rrdps/internal/httpsim"
	"rrdps/internal/ipspace"
	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
)

func main() {
	clock := simtime.NewSimulated()
	net := netsim.New(netsim.Config{Clock: clock})
	alloc := ipspace.NewAllocator(netip.MustParseAddr("20.0.0.0"))
	registry := ipspace.NewRegistry()
	scrubber := attack.NewRateScrubber(2)

	// One DPS provider with scrubbing edges.
	profile, _ := dps.ProfileFor(dps.Incapsula)
	provider := dps.New(dps.Config{
		Profile:  profile,
		Network:  net,
		Clock:    clock,
		Alloc:    alloc,
		Registry: registry,
		Rand:     rand.New(rand.NewSource(1)),
		Scrubber: scrubber,
	})

	// The victim origin, capacity-limited to 40 requests per tick.
	originAddr := alloc.NextAddr()
	origin := httpsim.NewOrigin(httpsim.OriginConfig{
		Page: httpsim.Page{Title: "Victim Shop", Meta: map[string]string{"description": "buy"}},
	})
	guard := attack.NewCapacityGuard(origin, 40)
	net.Register(netsim.Endpoint{Addr: originAddr, Port: netsim.PortHTTP}, netsim.RegionVirginia, guard)

	const host = "www.victimshop.com"
	asg, err := provider.Enroll("victimshop.com", originAddr, dps.ReroutingCNAME, dps.PlanFree)
	if err != nil {
		log.Fatalf("enroll: %v", err)
	}
	fmt.Printf("victim %s: origin %v hidden behind edge %v\n\n", host, originAddr, asg.EdgeAddr)

	botnet := attack.NewBotnet(50, alloc.NextAddr, rand.New(rand.NewSource(2)))
	legit := httpsim.NewClient(net, alloc.NextAddr(), netsim.RegionLondon)

	base := attack.Scenario{
		Network:        net,
		TargetHost:     host,
		Botnet:         botnet,
		RequestsPerBot: 8,
		Ticks:          6,
		LegitClient:    legit,
		LegitAddr:      asg.EdgeAddr,
		Tickers:        []interface{ Tick() }{scrubber, guard},
	}

	// Flood the edge: the scrubbing center absorbs the attack.
	protected := base
	protected.TargetAddr = asg.EdgeAddr
	p := protected.Run()
	fmt.Printf("flooding the edge:   availability %3.0f%%  (%d/%d flood requests scrubbed)\n",
		p.Availability()*100, p.AttackDropped, p.AttackSent)

	// Flood the origin: protection is bypassed. Advance time first so the
	// edge's content cache expires and availability probes take the full
	// path.
	clock.Advance(10 * time.Minute)
	bypass := base
	bypass.TargetAddr = originAddr
	b := bypass.Run()
	fmt.Printf("flooding the origin: availability %3.0f%%  (origin overloaded for %d ticks)\n",
		b.Availability()*100, guard.OverloadTicks())
}
