// Usage dynamics: run a three-week §IV measurement campaign on a small
// world with brisk churn and print the behaviour series and pause-period
// CDF (Figs. 3 and 5).
//
//	go run ./examples/usagedynamics
package main

import (
	"fmt"

	"rrdps/internal/core/behavior"
	"rrdps/internal/core/experiment"
	"rrdps/internal/core/report"
	"rrdps/internal/world"
)

func main() {
	cfg := world.PaperConfig(600)
	cfg.Seed = 99
	// Small populations need brisker churn to show every behaviour.
	cfg.JoinRate = 0.008
	cfg.LeaveRate = 0.015
	cfg.PauseRate = 0.03
	cfg.SwitchRate = 0.008
	w := world.New(cfg)

	res := experiment.Dynamics{World: w, Days: 21}.Run()

	fmt.Println(report.Figure3(res))
	fmt.Println(report.Figure5(res))

	// The tracker's detections can also be consumed programmatically.
	byKind := map[behavior.Kind]int{}
	for _, d := range res.Detections {
		byKind[d.Kind]++
	}
	fmt.Println("detections by kind:")
	for _, k := range behavior.AllKinds() {
		fmt.Printf("  %-7s %d\n", k, byKind[k])
	}

	// Compare with ground truth: the world records what really happened.
	fmt.Println("\nground truth events (days 0..19):")
	truth := map[world.BehaviorKind]int{}
	for _, e := range w.Events() {
		if e.Day < res.Days-1 && e.Kind != world.BehaviorIPChange {
			truth[e.Kind]++
		}
	}
	for _, k := range []world.BehaviorKind{
		world.BehaviorJoin, world.BehaviorLeave, world.BehaviorPause,
		world.BehaviorResume, world.BehaviorSwitch,
	} {
		fmt.Printf("  %-7s %d\n", k, truth[k])
	}
}
