// Residual scan: walk the Fig. 8 filtering pipeline step by step on a
// mid-size world — direct scan of Cloudflare's nameservers, IP-matching
// filter, A-matching filter (hidden records), HTML verification filter
// (verified origins).
//
//	go run ./examples/residualscan
package main

import (
	"fmt"

	"rrdps/internal/alexa"
	"rrdps/internal/core/collect"
	"rrdps/internal/core/filter"
	"rrdps/internal/core/htmlverify"
	"rrdps/internal/core/match"
	"rrdps/internal/core/rrscan"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/world"
)

func main() {
	cfg := world.PaperConfig(1200)
	cfg.Seed = 7
	cfg.LeaveRate *= 10
	cfg.SwitchRate *= 10
	w := world.New(cfg)
	// Age the world: four weeks of churn leave residual records behind.
	w.AdvanceDays(28)

	resolver := w.NewResolver(netsim.RegionOregon)
	var domains []alexa.Domain
	for _, s := range w.Sites() {
		domains = append(domains, s.Domain())
	}
	collector := collect.New(resolver, domains)
	matcher := match.New(w.Registry, dps.Profiles())

	// Step 0: discover Cloudflare's NS-rerouting nameservers from a
	// regular collection snapshot, exactly as the paper does (§V-A.1).
	snap := collector.Collect(w.Day())
	profile, _ := dps.ProfileFor(dps.Cloudflare)
	nsHosts, nsAddrs := rrscan.DiscoverNameservers([]collect.Snapshot{snap}, profile, resolver)
	fmt.Printf("discovered %d cloudflare NS-rerouting nameservers, e.g. %s\n", len(nsHosts), nsHosts[0])

	// Step 1: direct scan of every domain from five vantage points.
	var vantage []*dnsresolver.Client
	for _, region := range netsim.VantageRegions() {
		vantage = append(vantage, w.NewResolver(region).Client())
	}
	scanner := rrscan.NewScanner(vantage)
	scanned := scanner.ScanDirect(nsAddrs, domains)
	fmt.Printf("direct scan: %d/%d domains answered by cloudflare nameservers\n", len(scanned), len(domains))

	// Steps 2-4: the Fig. 8 pipeline.
	resolver.PurgeCache()
	verifier := htmlverify.New(w.NewHTTPClient(netsim.RegionOregon))
	pipeline := filter.New(matcher, resolver, verifier)
	rep := pipeline.Run(dps.Cloudflare, scanned)

	fmt.Printf("IP-matching filter: dropped %d answers inside cloudflare ranges\n", rep.DroppedByIPFilter)
	fmt.Printf("A-matching filter:  %d hidden records (A_diff = A_IP - A_nor)\n", len(rep.Hidden))
	verified := rep.VerifiedOrigins()
	fmt.Printf("HTML verification:  %d verified exposed origins\n\n", len(verified))

	for _, o := range rep.Outcomes {
		mark := " "
		if o.Verified {
			mark = "*"
		}
		site, _ := w.Site(o.Apex)
		truth := "stale"
		if site != nil && site.OriginAddr() == o.Addr {
			truth = "LIVE ORIGIN"
		}
		fmt.Printf("  %s %-28s hidden=%v (%s)\n", mark, o.WWW, o.Addr, truth)
	}
	fmt.Println("\n(*) = passed HTML verification; LIVE ORIGIN = matches ground truth")
}
