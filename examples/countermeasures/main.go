// Countermeasures: run the same residual-resolution campaign three times —
// no mitigation, with the provider-side audit (§VI-B.1), and with
// customer-side decoy records (§VI-B.2) — and compare what an attacker
// harvests in each world.
//
//	go run ./examples/countermeasures
package main

import (
	"fmt"

	"rrdps/internal/core/experiment"
	"rrdps/internal/world"
)

func baseConfig() world.Config {
	cfg := world.PaperConfig(1500)
	cfg.Seed = 2024
	cfg.LeaveRate *= 12
	cfg.SwitchRate *= 12
	cfg.JoinRate *= 12
	cfg.OriginRestrictedRate = 0
	cfg.DynamicMetaRate = 0
	return cfg
}

func main() {
	fmt.Println("residual-resolution campaign, 3 weeks + 3 weeks of history, 1500 sites")
	fmt.Println()

	base := experiment.Residual{
		World: world.New(baseConfig()), Weeks: 3, WarmupDays: 21,
	}.Run()
	report("no countermeasure", base)

	audited := experiment.Residual{
		World: world.New(baseConfig()), Weeks: 3, WarmupDays: 21,
		ProviderAudit: true,
	}.Run()
	report("provider audit (§VI-B.1)", audited)

	decoyCfg := baseConfig()
	decoyCfg.DecoyOnLeaveRate = 1.0
	decoyed := experiment.Residual{
		World: world.New(decoyCfg), Weeks: 3, WarmupDays: 21,
	}.Run()
	report("customer decoys (§VI-B.2)", decoyed)

	fmt.Println("provider audit removes the records; decoys poison them.")
}

func report(label string, res experiment.ResidualResult) {
	hidden, _ := res.TotalHidden()
	verified, _ := res.TotalVerified()
	fmt.Printf("%-26s hidden records: %3d   verified (real) origins: %3d\n", label, hidden, verified)
}
